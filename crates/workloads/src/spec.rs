//! Per-application parameter sets — one per row of the paper's Table II.
//!
//! Each [`AppSpec`] captures an application's *statistical shape*: how often
//! it touches memory, how its accesses split between an L1-resident hot set,
//! an L3-resident mid set (the writeback driver) and a beyond-L3 big set
//! (the miss driver), how bursty its misses are (memory-level parallelism,
//! which decides criticality), and its non-memory instruction latency mix
//! (IPC shaping). The `paper_*` fields carry Table II's reference values for
//! side-by-side reporting in the Table II reproduction.
//!
//! Calibration targets the paper's *classes* — high (WPKI+MPKI > 10),
//! medium (1–10), low (< 1) write intensity — and the relative ordering
//! within them; absolute values depend on the substrate and are reported in
//! EXPERIMENTS.md.

/// Access pattern of the big (beyond-L3) region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BigPattern {
    /// Sequential lines, cyclic over the region (streaming kernels).
    Stream,
    /// Uniformly random lines (pointer-chasing / irregular kernels).
    /// Dependence chains are not simulated; their effect — isolated,
    /// ROB-blocking misses — is modelled by `burst = 1`.
    Random,
}

/// Write-intensity class (paper §V.A: by WPKI + MPKI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WriteIntensity {
    /// WPKI + MPKI < 1.
    Low,
    /// 1 ≤ WPKI + MPKI ≤ 10.
    Medium,
    /// WPKI + MPKI > 10.
    High,
}

/// Statistical model parameters for one application.
#[derive(Clone, Copy, Debug)]
pub struct AppSpec {
    /// SPEC benchmark name.
    pub name: &'static str,
    /// Probability an instruction is a memory operation.
    pub mem_frac: f64,
    /// Memory-op weight of the mid (L3-resident) region; the hot region
    /// takes `1 - w_mid - w_big`.
    pub w_mid: f64,
    /// Memory-op weight of the big (beyond-L3) region.
    pub w_big: f64,
    /// Mid-region footprint in bytes.
    pub mid_bytes: u64,
    /// Big-region footprint in bytes.
    pub big_bytes: u64,
    /// Fraction of hot-region accesses that are stores.
    pub store_frac_hot: f64,
    /// Probability a mid-region load is followed by a store to the same
    /// line (read-modify-write; the writeback generator).
    pub store_frac_mid: f64,
    /// Same for big-region loads.
    pub store_frac_big: f64,
    /// Big-region access pattern.
    pub big_pattern: BigPattern,
    /// Consecutive big-region lines touched per burst: the MLP knob.
    /// 1 = isolated (critical) misses; ≥ 8 = overlapped (non-critical).
    pub burst: u32,
    /// Fraction of big-region bursts that are long *scans* (length
    /// `scan_burst`, drawn from a separate PC pool). Real irregular
    /// programs (mcf, astar) interleave pointer chasing with array scans:
    /// the chase PCs train critical, the scan PCs non-critical — the mix
    /// behind the paper's ~50% non-critical fetched blocks (Figure 8).
    pub scan_frac: f64,
    /// Length of a scan burst in lines.
    pub scan_burst: u32,
    /// Fraction of non-memory instructions with long latency.
    pub alu_long_frac: f64,
    /// Latency of those long instructions, cycles.
    pub alu_long_latency: u8,
    /// Table II reference: writebacks per kilo-instruction.
    pub paper_wpki: f64,
    /// Table II reference: misses per kilo-instruction.
    pub paper_mpki: f64,
    /// Table II reference: L3 hit rate.
    pub paper_hitrate: f64,
    /// Table II reference: single-core IPC.
    pub paper_ipc: f64,
}

impl AppSpec {
    /// Write-intensity class from the paper's Table II values.
    pub fn paper_intensity(&self) -> WriteIntensity {
        classify(self.paper_wpki + self.paper_mpki)
    }

    /// Hot-region weight (`1 - w_mid - w_big`).
    pub fn w_hot(&self) -> f64 {
        1.0 - self.w_mid - self.w_big
    }

    /// Sanity-check the parameters.
    ///
    /// # Panics
    /// Panics on out-of-range probabilities or empty regions.
    pub fn validate(&self) {
        assert!(self.mem_frac > 0.0 && self.mem_frac < 1.0, "{}", self.name);
        assert!(self.w_mid >= 0.0 && self.w_big >= 0.0, "{}", self.name);
        assert!(self.w_hot() > 0.0, "{}: hot weight must remain", self.name);
        for f in [
            self.store_frac_hot,
            self.store_frac_mid,
            self.store_frac_big,
            self.alu_long_frac,
        ] {
            assert!((0.0..=1.0).contains(&f), "{}", self.name);
        }
        assert!(self.burst >= 1, "{}", self.name);
        assert!((0.0..=1.0).contains(&self.scan_frac), "{}", self.name);
        assert!(self.scan_burst >= 1, "{}", self.name);
        assert!(self.big_bytes >= 64, "{}", self.name);
        assert!(self.mid_bytes >= 64, "{}", self.name);
    }
}

/// Classify a WPKI+MPKI sum (paper §V.A).
pub fn classify(wpki_plus_mpki: f64) -> WriteIntensity {
    if wpki_plus_mpki > 10.0 {
        WriteIntensity::High
    } else if wpki_plus_mpki >= 1.0 {
        WriteIntensity::Medium
    } else {
        WriteIntensity::Low
    }
}

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Shorthand constructor keeping the table readable.
#[allow(clippy::too_many_arguments)]
const fn app(
    name: &'static str,
    mem_frac: f64,
    w_mid: f64,
    w_big: f64,
    mid_bytes: u64,
    big_bytes: u64,
    store_frac_mid: f64,
    store_frac_big: f64,
    big_pattern: BigPattern,
    burst: u32,
    alu_long_frac: f64,
    alu_long_latency: u8,
    paper: (f64, f64, f64, f64), // (wpki, mpki, hitrate, ipc)
) -> AppSpec {
    AppSpec {
        name,
        mem_frac,
        w_mid,
        w_big,
        mid_bytes,
        big_bytes,
        store_frac_hot: 0.3,
        store_frac_mid,
        store_frac_big,
        big_pattern,
        burst,
        scan_frac: 0.0,
        scan_burst: 8,
        alu_long_frac,
        alu_long_latency,
        paper_wpki: paper.0,
        paper_mpki: paper.1,
        paper_hitrate: paper.2,
        paper_ipc: paper.3,
    }
}

use BigPattern::{Random, Stream};

/// Add a scan phase to an app (chase/scan PC mix; see `AppSpec::scan_frac`).
const fn with_scans(mut a: AppSpec, scan_frac: f64, scan_burst: u32) -> AppSpec {
    a.scan_frac = scan_frac;
    a.scan_burst = scan_burst;
    a
}

/// The 22 applications of Table II.
pub const SPEC_TABLE: [AppSpec; 22] = [
    // --- high write-intensive -------------------------------------------
    // mcf: irregular pointer-heavy traversal; isolated misses, huge foot-
    // print, heavy read-modify-write.
    with_scans(
        app(
            "mcf",
            0.35,
            0.16,
            0.10,
            3 * MB,
            64 * MB,
            0.90,
            0.80,
            Random,
            1,
            0.0,
            1,
            (68.67, 55.29, 0.20, 0.07),
        ),
        0.5,
        48,
    ),
    // streamL: pure copy stream — every line loaded once and stored once.
    app(
        "streamL",
        0.35,
        0.0,
        0.15,
        1 * MB,
        8 * MB,
        0.0,
        1.0,
        Stream,
        32,
        0.01,
        60,
        (36.25, 36.25, 0.00, 0.37),
    ),
    app(
        "lbm",
        0.35,
        0.0,
        0.125,
        1 * MB,
        8 * MB,
        0.0,
        1.0,
        Stream,
        16,
        0.0,
        1,
        (31.66, 31.46, 0.01, 0.53),
    ),
    app(
        "zeusmp",
        0.35,
        0.012,
        0.069,
        1 * MB,
        8 * MB,
        0.5,
        1.0,
        Stream,
        16,
        0.025,
        60,
        (18.57, 17.13, 0.08, 0.54),
    ),
    app(
        "bwaves",
        0.35,
        0.010,
        0.051,
        1 * MB,
        8 * MB,
        0.5,
        1.0,
        Stream,
        16,
        0.02,
        60,
        (14.01, 12.91, 0.08, 0.59),
    ),
    app(
        "libquantum",
        0.35,
        0.0,
        0.041,
        1 * MB,
        8 * MB,
        0.0,
        1.0,
        Stream,
        32,
        0.04,
        60,
        (11.67, 11.64, 0.00, 0.34),
    ),
    app(
        "milc",
        0.35,
        0.0,
        0.037,
        1 * MB,
        8 * MB,
        0.0,
        1.0,
        Stream,
        8,
        0.025,
        60,
        (11.31, 11.28, 0.00, 0.71),
    ),
    // omnetpp / xalancbmk: discrete-event / XML churn — the working set
    // fits the L3 slice (high hit rate) but writes torrentially.
    app(
        "omnetpp",
        0.35,
        0.100,
        0.0018,
        1536 * KB,
        64 * MB,
        0.50,
        0.5,
        Random,
        1,
        0.0,
        1,
        (16.22, 0.61, 0.96, 0.78),
    ),
    app(
        "xalancbmk",
        0.35,
        0.081,
        0.0022,
        1536 * KB,
        64 * MB,
        0.50,
        0.5,
        Random,
        1,
        0.0,
        1,
        (13.17, 0.76, 0.94, 0.89),
    ),
    // --- medium ----------------------------------------------------------
    app(
        "leslie3d",
        0.32,
        0.004,
        0.016,
        1 * MB,
        8 * MB,
        0.5,
        1.0,
        Stream,
        8,
        0.008,
        60,
        (5.24, 4.86, 0.07, 1.33),
    ),
    with_scans(
        app(
            "bzip2",
            0.30,
            0.030,
            0.0023,
            1536 * KB,
            48 * MB,
            0.50,
            0.4,
            Random,
            2,
            0.02,
            60,
            (2.89, 0.69, 0.76, 1.63),
        ),
        0.6,
        8,
    ),
    app(
        "gromacs",
        0.30,
        0.015,
        0.0020,
        1 * MB,
        32 * MB,
        0.45,
        0.4,
        Random,
        2,
        0.025,
        60,
        (1.85, 0.61, 0.67, 1.61),
    ),
    app(
        "hmmer",
        0.30,
        0.020,
        0.0004,
        1 * MB,
        32 * MB,
        0.50,
        0.4,
        Random,
        2,
        0.008,
        60,
        (2.20, 0.13, 0.94, 2.61),
    ),
    app(
        "soplex",
        0.30,
        0.012,
        0.0008,
        1536 * KB,
        32 * MB,
        0.50,
        0.4,
        Random,
        1,
        0.05,
        60,
        (1.27, 0.25, 0.80, 0.94),
    ),
    app(
        "h264ref",
        0.30,
        0.010,
        0.0003,
        1 * MB,
        32 * MB,
        0.50,
        0.4,
        Random,
        2,
        0.015,
        60,
        (1.09, 0.08, 0.93, 2.00),
    ),
    // --- low --------------------------------------------------------------
    app(
        "sjeng",
        0.28,
        0.004,
        0.0010,
        1 * MB,
        32 * MB,
        0.30,
        0.3,
        Random,
        1,
        0.04,
        60,
        (0.52, 0.32, 0.41, 1.16),
    ),
    app(
        "sphinx3",
        0.28,
        0.0002,
        0.0010,
        1 * MB,
        8 * MB,
        0.3,
        1.0,
        Stream,
        4,
        0.015,
        60,
        (0.30, 0.30, 0.06, 1.96),
    ),
    app(
        "dealII",
        0.28,
        0.003,
        0.0004,
        1 * MB,
        32 * MB,
        0.50,
        0.4,
        Random,
        2,
        0.012,
        60,
        (0.33, 0.12, 0.65, 2.27),
    ),
    with_scans(
        app(
            "astar",
            0.28,
            0.0025,
            0.0004,
            1 * MB,
            32 * MB,
            0.40,
            0.4,
            Random,
            1,
            0.015,
            60,
            (0.24, 0.12, 0.54, 2.08),
        ),
        0.5,
        8,
    ),
    app(
        "povray",
        0.25,
        0.002,
        0.0001,
        1 * MB,
        32 * MB,
        0.35,
        0.3,
        Random,
        1,
        0.025,
        60,
        (0.18, 0.04, 0.79, 1.57),
    ),
    app(
        "namd",
        0.25,
        0.0005,
        0.00015,
        1 * MB,
        32 * MB,
        0.30,
        0.3,
        Random,
        2,
        0.012,
        60,
        (0.04, 0.05, 0.21, 2.34),
    ),
    app(
        "GemsFDTD",
        0.25,
        0.0,
        0.00003,
        1 * MB,
        8 * MB,
        0.0,
        0.3,
        Stream,
        4,
        0.02,
        60,
        (0.00, 0.01, 0.00, 1.81),
    ),
];

/// Look up an application by name.
pub fn app_by_name(name: &str) -> Option<&'static AppSpec> {
    SPEC_TABLE.iter().find(|a| a.name == name)
}

/// The eight applications of the paper's Figures 7–9 predictor study.
pub const PREDICTOR_STUDY_APPS: [&str; 8] = [
    "mcf", "GemsFDTD", "lbm", "milc", "astar", "bwaves", "bzip2", "leslie3d",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_22_apps_with_unique_names() {
        assert_eq!(SPEC_TABLE.len(), 22);
        let mut names: Vec<_> = SPEC_TABLE.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22, "duplicate app names");
    }

    #[test]
    fn all_specs_validate() {
        for a in &SPEC_TABLE {
            a.validate();
        }
    }

    #[test]
    fn paper_classes_match_section_5a() {
        // §V.A: sum > 10 high, 1..10 medium, < 1 low.
        use WriteIntensity::*;
        assert_eq!(app_by_name("mcf").unwrap().paper_intensity(), High);
        assert_eq!(app_by_name("milc").unwrap().paper_intensity(), High);
        assert_eq!(app_by_name("omnetpp").unwrap().paper_intensity(), High);
        assert_eq!(app_by_name("leslie3d").unwrap().paper_intensity(), High);
        // leslie3d: 5.24+4.86 = 10.1 > 10 — it straddles the boundary; the
        // paper groups it with medium in prose but its sum is high. Check
        // the arithmetic class here.
        assert_eq!(classify(10.1), High);
        assert_eq!(app_by_name("bzip2").unwrap().paper_intensity(), Medium);
        assert_eq!(app_by_name("povray").unwrap().paper_intensity(), Low);
        assert_eq!(app_by_name("GemsFDTD").unwrap().paper_intensity(), Low);
    }

    #[test]
    fn intensity_counts_are_plausible() {
        let high = SPEC_TABLE
            .iter()
            .filter(|a| a.paper_intensity() == WriteIntensity::High)
            .count();
        let low = SPEC_TABLE
            .iter()
            .filter(|a| a.paper_intensity() == WriteIntensity::Low)
            .count();
        assert!(high >= 8, "Table II has 9-10 high apps, found {high}");
        assert!(low >= 6, "Table II has ~7 low apps, found {low}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("mcf").is_some());
        assert!(app_by_name("nonexistent").is_none());
        for n in PREDICTOR_STUDY_APPS {
            assert!(app_by_name(n).is_some(), "{n} missing from table");
        }
    }

    #[test]
    fn streaming_apps_have_high_bursts_and_chasers_do_not() {
        assert!(app_by_name("streamL").unwrap().burst >= 16);
        assert!(app_by_name("libquantum").unwrap().burst >= 16);
        assert_eq!(app_by_name("mcf").unwrap().burst, 1);
        assert_eq!(app_by_name("omnetpp").unwrap().burst, 1);
    }

    #[test]
    fn hot_weight_dominates_every_app() {
        for a in &SPEC_TABLE {
            assert!(
                a.w_hot() > 0.4,
                "{}: a large share of accesses should hit the hot set",
                a.name
            );
        }
    }
}
