//! The write-burst saturation family (WB1–WB4) and the trickle probe.
//!
//! These are not Table II applications: they exist to stress the L3 bank
//! service model (DESIGN.md §12), where every fill and L2 writeback
//! occupies a ReRAM bank's data array for the full (slow) write latency
//! and later reads queue behind it. Each WB level runs the *same*
//! synthetic app on every core — a homogeneous copy-stream whose write
//! pressure escalates with the level — so per-bank queueing grows
//! monotonically from WB1 to WB4 and scheme differences under bank
//! pressure are isolated from workload-mix noise.
//!
//! The knobs that escalate per level:
//!
//! * `w_big` — the miss (fill) rate driver;
//! * `burst` — memory-level parallelism: overlapped misses pile writes
//!   onto a bank faster than its write latency drains them;
//! * `store_frac_big` — read-modify-write share, doubling each line's
//!   bank writes via the L2 writeback path;
//! * `w_mid` (store-heavy, L3-resident) — adds write-to-read turnaround
//!   (`raw`/`war` transitions) on lines that *hit* the L3.
//!
//! [`TRICKLE`] is the opposite extreme for CI: sparse isolated misses
//! (~1 big access per 1 600 instructions, `burst = 1`, no stores) over a
//! footprint so large that nothing is ever re-read from the L3. Since
//! `queue_cycles` counts read-side stall only, even the asymmetric
//! default configuration must report **zero** `queue_cycles` on every
//! bank. A nonzero value under trickle means bank occupancy leaks into
//! uncontended single-core timing.
//!
//! Workload ids: WB*k* is `WBURST_ID_BASE + k` (101–104), the trickle
//! probe is [`TRICKLE_ID`] (105); `workload_mix` accepts these alongside
//! WL1–WL10.

use crate::spec::{AppSpec, BigPattern};

/// Workload ids `WBURST_ID_BASE + 1 ..= WBURST_ID_BASE + N_WBURST` are the
/// write-burst levels (kept far from the WL1–WL10 range so future paper
/// mixes never collide).
pub const WBURST_ID_BASE: usize = 100;

/// Number of write-burst levels.
pub const N_WBURST: usize = 4;

/// Workload id of the single-app trickle probe.
pub const TRICKLE_ID: usize = WBURST_ID_BASE + N_WBURST + 1;

/// The write-burst level for a workload id (`101 → 1`), if it is one.
pub fn wburst_level(id: usize) -> Option<usize> {
    (WBURST_ID_BASE + 1..=WBURST_ID_BASE + N_WBURST)
        .contains(&id)
        .then(|| id - WBURST_ID_BASE)
}

/// Shorthand for the WB levels; the `paper_*` fields hold nominal targets
/// (these apps have no Table II row) so intensity reporting stays sane.
const fn wb(
    name: &'static str,
    mem_frac: f64,
    w_mid: f64,
    w_big: f64,
    store_frac_big: f64,
    burst: u32,
    nominal_wpki: f64,
) -> AppSpec {
    AppSpec {
        name,
        mem_frac,
        w_mid,
        w_big,
        mid_bytes: 1024 * 1024,
        big_bytes: 8 * 1024 * 1024,
        store_frac_hot: 0.3,
        store_frac_mid: 1.0,
        store_frac_big,
        big_pattern: BigPattern::Stream,
        burst,
        scan_frac: 0.0,
        scan_burst: 8,
        alu_long_frac: 0.0,
        alu_long_latency: 1,
        paper_wpki: nominal_wpki,
        paper_mpki: nominal_wpki,
        paper_hitrate: 0.0,
        paper_ipc: 0.4,
    }
}

/// The four write-burst levels, WB1 (mild) → WB4 (saturating).
pub const WBURST_TABLE: [AppSpec; 4] = [
    wb("wburst1", 0.30, 0.02, 0.06, 0.50, 8, 15.0),
    wb("wburst2", 0.33, 0.03, 0.10, 1.0, 16, 25.0),
    wb("wburst3", 0.35, 0.04, 0.15, 1.0, 32, 35.0),
    wb("wburst4", 0.35, 0.05, 0.22, 1.0, 64, 45.0),
];

/// The trickle probe: sparse, isolated misses that never *read* the L3
/// data array.
///
/// `queue_cycles` counts read-side waiting only (posted-write semantics,
/// DESIGN.md §12), so the structural guarantee this probe offers is
/// *no L3 data-array reads at all*: every big-region access misses (a
/// 512 MB random footprint against a single 2 MB bank makes a revisit
/// while still resident vanishingly rare, and residency is a pure
/// function of the address stream — independent of any timing change),
/// misses pay only the SRAM tag check, and no store path exists anywhere
/// (hot stores included — a dirty L1-resident line could otherwise ride
/// an eviction into the L3). Zero reads → zero queue cycles, exactly,
/// even under the asymmetric default.
pub const TRICKLE: AppSpec = AppSpec {
    name: "trickle",
    mem_frac: 0.30,
    w_mid: 0.0,
    w_big: 0.002,
    mid_bytes: 64 * 1024,
    big_bytes: 512 * 1024 * 1024,
    store_frac_hot: 0.0,
    store_frac_mid: 0.0,
    store_frac_big: 0.0,
    big_pattern: BigPattern::Random,
    burst: 1,
    scan_frac: 0.0,
    scan_burst: 8,
    alu_long_frac: 0.0,
    alu_long_latency: 1,
    paper_wpki: 0.0,
    paper_mpki: 0.6,
    paper_hitrate: 0.0,
    paper_ipc: 0.9,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WriteIntensity;

    #[test]
    fn all_wburst_specs_validate() {
        for a in &WBURST_TABLE {
            a.validate();
        }
        TRICKLE.validate();
    }

    #[test]
    fn levels_escalate_write_pressure() {
        for w in WBURST_TABLE.windows(2) {
            assert!(w[0].w_big < w[1].w_big, "{}: w_big must grow", w[1].name);
            assert!(w[0].burst < w[1].burst, "{}: burst must grow", w[1].name);
            assert!(w[0].store_frac_big <= w[1].store_frac_big);
        }
    }

    #[test]
    fn wburst_is_high_intensity_and_trickle_is_low() {
        for a in &WBURST_TABLE {
            assert_eq!(a.paper_intensity(), WriteIntensity::High, "{}", a.name);
        }
        assert_eq!(TRICKLE.paper_intensity(), WriteIntensity::Low);
    }

    #[test]
    fn trickle_cannot_write_the_l3() {
        assert_eq!(TRICKLE.store_frac_hot, 0.0);
        assert_eq!(TRICKLE.store_frac_mid, 0.0);
        assert_eq!(TRICKLE.store_frac_big, 0.0);
        assert_eq!(TRICKLE.burst, 1);
        // Expected gap between big-region accesses, in instructions: far
        // beyond any write latency the config validator would accept.
        let gap = 1.0 / (TRICKLE.mem_frac * TRICKLE.w_big);
        assert!(gap > 1_000.0, "misses too close together: every {gap:.0}");
    }

    #[test]
    fn id_mapping() {
        assert_eq!(wburst_level(100), None);
        assert_eq!(wburst_level(101), Some(1));
        assert_eq!(wburst_level(104), Some(4));
        assert_eq!(wburst_level(105), None);
        assert_eq!(TRICKLE_ID, 105);
    }
}
