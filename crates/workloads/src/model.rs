//! The synthetic application generator.
//!
//! An [`AppModel`] turns an [`AppSpec`] into an
//! infinite, deterministic instruction stream (it implements
//! [`cmp_sim::instr::InstrSource`]).
//!
//! Virtual-address layout inside the core's private 256 MB slice:
//!
//! ```text
//! [0 .. 8K)              hot region   (L1-resident)
//! [64K .. 64K+mid)       mid region   (L3-resident, misses the L2)
//! [128M .. 128M+big)     big region   (beyond the L3)
//! ```
//!
//! Mechanics:
//!
//! * memory ops are drawn with probability `mem_frac`, split across the
//!   regions by their weights;
//! * big-region accesses come in **bursts** of `burst` consecutive lines
//!   (the MLP knob: a burst's misses overlap in the memory system so only
//!   the leading one blocks the ROB head — isolated misses, `burst = 1`,
//!   all block);
//! * mid/big loads are followed by a store to the same line with the
//!   region's store fraction (read-modify-write — the writeback source);
//! * each region draws PCs from its own pool, giving the Criticality
//!   Predictor Table stable loop PCs to learn.

use cmp_sim::instr::{Instr, InstrSource};
use cmp_sim::types::{Pc, LINE_BYTES};
use sim_rng::{Bounded, SimRng};

use crate::spec::{AppSpec, BigPattern};

const HOT_BYTES: u64 = 8 * 1024;
const HOT_BASE: u64 = 0;
const MID_BASE: u64 = 64 * 1024;
const BIG_BASE: u64 = 128 * 1024 * 1024;

/// PC pool bases and sizes per region (word-aligned synthetic PCs).
const HOT_PCS: (Pc, u32) = (0x1000, 64);
const MID_PCS: (Pc, u32) = (0x2000, 32);
const BIG_PCS: (Pc, u32) = (0x3000, 16);
const SCAN_PCS: (Pc, u32) = (0x4000, 16);
/// Store PCs live in a disjoint range from load PCs.
const STORE_PC_OFFSET: Pc = 0x8000;

/// A deterministic synthetic application.
pub struct AppModel {
    spec: AppSpec,
    rng: SimRng,
    mid_lines: u64,
    big_lines: u64,
    /// Precomputed region samplers (`gen_range` hoisted: same draws, no
    /// per-access division).
    hot_pick: Bounded,
    mid_pick: Bounded,
    big_pick: Bounded,
    /// Next big-region line of the current burst (absolute line index
    /// within the big region).
    burst_line: u64,
    burst_left: u32,
    /// Persistent stream position across bursts.
    stream_pos: u64,
    /// A store queued to follow its load (read-modify-write).
    pending_store: Option<(u64, Pc)>,
    /// Whether the current burst is a scan (separate PC pool).
    in_scan: bool,
    /// `w_big / expected_burst_len()`, hoisted from the per-draw path (a
    /// constant of the spec; same f64 value as computing it inline).
    p_burst: f64,
    /// An instruction drawn past the end of an ALU run (see
    /// [`InstrSource::next_alu_run`]), handed out by the next
    /// `next_instr` call so the stream order is unchanged.
    peeked: Option<Instr>,
    pc_counters: [u32; 4],
}

impl AppModel {
    /// Build a model from a spec with a deterministic seed.
    pub fn new(spec: AppSpec, seed: u64) -> Self {
        spec.validate();
        let hot_lines = HOT_BYTES / LINE_BYTES;
        let mid_lines = spec.mid_bytes / LINE_BYTES;
        let big_lines = spec.big_bytes / LINE_BYTES;
        let mut m = AppModel {
            mid_lines,
            big_lines,
            hot_pick: Bounded::new(hot_lines.max(1)),
            mid_pick: Bounded::new(mid_lines.max(1)),
            big_pick: Bounded::new(big_lines.max(1)),
            rng: SimRng::seed_from_u64(seed ^ 0x5eed_0000),
            burst_line: 0,
            burst_left: 0,
            stream_pos: 0,
            pending_store: None,
            in_scan: false,
            p_burst: 0.0,
            peeked: None,
            pc_counters: [0; 4],
            spec,
        };
        m.p_burst = m.spec.w_big / m.expected_burst_len();
        m
    }

    /// The spec driving this model.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    #[inline]
    fn next_pc(&mut self, region: usize) -> Pc {
        let (base, n) = [HOT_PCS, MID_PCS, BIG_PCS, SCAN_PCS][region];
        let c = self.pc_counters[region];
        self.pc_counters[region] = c.wrapping_add(1);
        // Pool sizes are powers of two; the mask is the modulo.
        debug_assert!(n.is_power_of_two());
        base + (c & (n - 1)) * 4
    }

    #[inline]
    fn hot_access(&mut self) -> Instr {
        let line = self.hot_pick.sample(&mut self.rng);
        let vaddr = HOT_BASE + line * LINE_BYTES;
        let pc = self.next_pc(0);
        if self.rng.gen_f64() < self.spec.store_frac_hot {
            Instr::Store {
                vaddr,
                pc: pc + STORE_PC_OFFSET,
            }
        } else {
            Instr::Load { vaddr, pc }
        }
    }

    #[inline]
    fn mid_access(&mut self) -> Instr {
        debug_assert!(self.mid_lines > 0);
        let line = self.mid_pick.sample(&mut self.rng);
        let vaddr = MID_BASE + line * LINE_BYTES;
        let pc = self.next_pc(1);
        if self.rng.gen_f64() < self.spec.store_frac_mid {
            // Read-modify-write: the store trails the load.
            self.pending_store = Some((vaddr, pc + STORE_PC_OFFSET));
        }
        Instr::Load { vaddr, pc }
    }

    #[inline]
    fn big_access(&mut self) -> Instr {
        // `burst_line` is kept normalized to `[0, big_lines)`, so the wrap
        // is a compare instead of a per-access modulo.
        let line = self.burst_line;
        self.burst_line += 1;
        if self.burst_line == self.big_lines {
            self.burst_line = 0;
        }
        self.burst_left -= 1;
        let vaddr = BIG_BASE + line * LINE_BYTES;
        let pc = self.next_pc(if self.in_scan { 3 } else { 2 });
        if self.rng.gen_f64() < self.spec.store_frac_big {
            self.pending_store = Some((vaddr, pc + STORE_PC_OFFSET));
        }
        Instr::Load { vaddr, pc }
    }

    fn start_burst(&mut self) {
        self.in_scan = self.spec.scan_frac > 0.0 && self.rng.gen_f64() < self.spec.scan_frac;
        let len = if self.in_scan {
            self.spec.scan_burst
        } else {
            self.spec.burst
        };
        self.burst_left = len;
        self.burst_line = match self.spec.big_pattern {
            BigPattern::Stream => {
                let start = self.stream_pos;
                self.stream_pos = (self.stream_pos + len as u64) % self.big_lines;
                start
            }
            BigPattern::Random => {
                debug_assert!(self.big_lines > 0);
                self.big_pick.sample(&mut self.rng)
            }
        };
    }

    /// Expected burst length given the chase/scan mix.
    fn expected_burst_len(&self) -> f64 {
        (1.0 - self.spec.scan_frac) * self.spec.burst as f64
            + self.spec.scan_frac * self.spec.scan_burst as f64
    }

    /// Draw the next instruction from the generative model (ignoring any
    /// peeked instruction — callers handle that).
    fn draw(&mut self) -> Instr {
        if self.rng.gen_f64() < self.spec.mem_frac {
            if let Some((vaddr, pc)) = self.pending_store.take() {
                return Instr::Store { vaddr, pc };
            }
            if self.burst_left > 0 {
                return self.big_access();
            }
            // A burst delivers several big accesses, so the *start*
            // probability is the big weight divided by the expected burst
            // length — keeping `w_big` the fraction of memory ops that are
            // big-region loads regardless of burstiness.
            let p_burst = self.p_burst;
            let r = self.rng.gen_f64();
            if r < p_burst {
                self.start_burst();
                self.big_access()
            } else if r < p_burst + self.spec.w_mid {
                self.mid_access()
            } else {
                self.hot_access()
            }
        } else {
            let latency =
                if self.spec.alu_long_frac > 0.0 && self.rng.gen_f64() < self.spec.alu_long_frac {
                    self.spec.alu_long_latency
                } else {
                    1
                };
            Instr::Alu { latency }
        }
    }
}

impl InstrSource for AppModel {
    fn next_instr(&mut self) -> Instr {
        if let Some(i) = self.peeked.take() {
            return i;
        }
        self.draw()
    }

    fn next_alu_run(&mut self, max: u32) -> u32 {
        if self.peeked.is_some() {
            // The stashed instruction ended the previous run; it must be
            // delivered (via `next_instr`) before any further draws.
            return 0;
        }
        let mut n = 0;
        while n < max {
            match self.draw() {
                Instr::Alu { latency: 1 } => n += 1,
                other => {
                    self.peeked = Some(other);
                    break;
                }
            }
        }
        n
    }

    fn label(&self) -> &str {
        self.spec.name
    }

    fn warm_ranges(&self) -> Vec<(u64, u64)> {
        // The cache-resident working sets: hot (L1) and mid (L3) regions.
        // The big region is streamed/missed by construction — warming it
        // would be wrong.
        if self.spec.w_mid > 0.0 {
            vec![(HOT_BASE, HOT_BYTES), (MID_BASE, self.spec.mid_bytes)]
        } else {
            vec![(HOT_BASE, HOT_BYTES)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{app_by_name, SPEC_TABLE};

    fn count_kinds(model: &mut AppModel, n: usize) -> (usize, usize, usize) {
        let (mut loads, mut stores, mut alus) = (0, 0, 0);
        for _ in 0..n {
            match model.next_instr() {
                Instr::Load { .. } => loads += 1,
                Instr::Store { .. } => stores += 1,
                Instr::Alu { .. } => alus += 1,
            }
        }
        (loads, stores, alus)
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = *app_by_name("mcf").unwrap();
        let mut a = AppModel::new(spec, 7);
        let mut b = AppModel::new(spec, 7);
        for _ in 0..10_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn alu_run_batching_preserves_stream() {
        // Consuming the model through next_alu_run + next_instr must yield
        // exactly the stream next_instr alone would, for every app.
        for spec in &SPEC_TABLE {
            let mut plain = AppModel::new(*spec, 7);
            let mut batched = AppModel::new(*spec, 7);
            let mut got = Vec::with_capacity(60_000);
            while got.len() < 50_000 {
                let n = batched.next_alu_run(6);
                for _ in 0..n {
                    got.push(Instr::Alu { latency: 1 });
                }
                got.push(batched.next_instr());
            }
            for (i, want) in got.into_iter().enumerate() {
                assert_eq!(plain.next_instr(), want, "{}: instr {i}", spec.name);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = *app_by_name("mcf").unwrap();
        let mut a = AppModel::new(spec, 1);
        let mut b = AppModel::new(spec, 2);
        let same = (0..1000)
            .filter(|_| a.next_instr() == b.next_instr())
            .count();
        assert!(same < 990, "streams should diverge: {same}/1000 identical");
    }

    #[test]
    fn mem_fraction_approximates_spec() {
        for name in ["mcf", "povray", "streamL"] {
            let spec = *app_by_name(name).unwrap();
            let mut m = AppModel::new(spec, 3);
            let n = 200_000;
            let (loads, stores, _) = count_kinds(&mut m, n);
            let mem_frac = (loads + stores) as f64 / n as f64;
            // Pending stores add extra memory ops beyond mem_frac draws;
            // allow a generous band.
            assert!(
                (mem_frac - spec.mem_frac).abs() < 0.08,
                "{name}: measured {mem_frac:.3} vs spec {:.3}",
                spec.mem_frac
            );
        }
    }

    #[test]
    fn streaml_stores_follow_loads() {
        // streamL has store_frac_big = 1.0: every big load is followed by a
        // store to the same line.
        let spec = *app_by_name("streamL").unwrap();
        let mut m = AppModel::new(spec, 5);
        let mut last_big_load: Option<u64> = None;
        let mut follows = 0;
        let mut big_loads = 0;
        for _ in 0..100_000 {
            match m.next_instr() {
                Instr::Load { vaddr, .. } if vaddr >= super::BIG_BASE => {
                    big_loads += 1;
                    last_big_load = Some(vaddr);
                }
                Instr::Store { vaddr, .. } if vaddr >= super::BIG_BASE => {
                    if last_big_load == Some(vaddr) {
                        follows += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(big_loads > 1000);
        assert!(
            follows as f64 > big_loads as f64 * 0.9,
            "{follows}/{big_loads} stores followed their load"
        );
    }

    #[test]
    fn stream_pattern_is_sequential() {
        let spec = *app_by_name("libquantum").unwrap();
        let mut m = AppModel::new(spec, 11);
        let mut big_lines = Vec::new();
        for _ in 0..200_000 {
            if let Instr::Load { vaddr, .. } = m.next_instr() {
                if vaddr >= super::BIG_BASE {
                    big_lines.push((vaddr - super::BIG_BASE) / 64);
                }
            }
            if big_lines.len() > 500 {
                break;
            }
        }
        // Sequential: the vast majority of consecutive big loads differ by 1.
        let seq = big_lines
            .windows(2)
            .filter(|w| w[1] == w[0] + 1 || w[1] == 0)
            .count();
        assert!(
            seq as f64 > big_lines.len() as f64 * 0.9,
            "stream must be sequential: {seq}/{}",
            big_lines.len()
        );
    }

    #[test]
    fn random_pattern_is_not_sequential() {
        // mcf without its scan phases: pure pointer-chase jumps.
        let mut spec = *app_by_name("mcf").unwrap();
        spec.scan_frac = 0.0;
        let mut m = AppModel::new(spec, 11);
        let mut big_lines = Vec::new();
        for _ in 0..200_000 {
            if let Instr::Load { vaddr, .. } = m.next_instr() {
                if vaddr >= super::BIG_BASE {
                    big_lines.push((vaddr - super::BIG_BASE) / 64);
                }
            }
            if big_lines.len() > 500 {
                break;
            }
        }
        let seq = big_lines.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            (seq as f64) < big_lines.len() as f64 * 0.2,
            "mcf (burst=1) must jump around: {seq}/{}",
            big_lines.len()
        );
    }

    #[test]
    fn addresses_stay_in_their_regions() {
        for spec in &SPEC_TABLE {
            let mut m = AppModel::new(*spec, 1);
            for _ in 0..20_000 {
                let (vaddr, _is_store) = match m.next_instr() {
                    Instr::Load { vaddr, .. } => (vaddr, false),
                    Instr::Store { vaddr, .. } => (vaddr, true),
                    Instr::Alu { .. } => continue,
                };
                let in_hot = vaddr < HOT_BYTES;
                let in_mid = (MID_BASE..MID_BASE + spec.mid_bytes).contains(&vaddr);
                let in_big = (BIG_BASE..BIG_BASE + spec.big_bytes).contains(&vaddr);
                assert!(
                    in_hot || in_mid || in_big,
                    "{}: vaddr {vaddr:#x} outside all regions",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn pc_pools_are_disjoint_and_bounded() {
        let spec = *app_by_name("mcf").unwrap();
        let mut m = AppModel::new(spec, 1);
        let mut pcs = std::collections::HashSet::new();
        for _ in 0..100_000 {
            match m.next_instr() {
                Instr::Load { pc, .. } | Instr::Store { pc, .. } => {
                    pcs.insert(pc);
                }
                _ => {}
            }
        }
        // Bounded static footprint: ≤ 2 × (64 + 32 + 16 + 16) PCs.
        assert!(pcs.len() <= 256, "{} distinct PCs", pcs.len());
        // Load and store PCs must not collide (predictor indexes by PC).
        for pc in &pcs {
            let is_store_pc = *pc >= STORE_PC_OFFSET;
            if is_store_pc {
                assert!(pcs.contains(&(pc - STORE_PC_OFFSET)));
            }
        }
    }

    #[test]
    fn gems_generates_almost_no_memory_traffic_beyond_hot() {
        let spec = *app_by_name("GemsFDTD").unwrap();
        let mut m = AppModel::new(spec, 1);
        let mut beyond_hot = 0;
        for _ in 0..100_000 {
            match m.next_instr() {
                Instr::Load { vaddr, .. } | Instr::Store { vaddr, .. } if vaddr >= HOT_BYTES => {
                    beyond_hot += 1;
                }
                _ => {}
            }
        }
        assert!(
            beyond_hot < 50,
            "GemsFDTD beyond-hot accesses: {beyond_hot}"
        );
    }

    #[test]
    fn label_matches_spec_name() {
        let spec = *app_by_name("lbm").unwrap();
        let m = AppModel::new(spec, 1);
        assert_eq!(m.label(), "lbm");
    }
}
