//! Synthetic SPEC CPU2006-like application models and the multiprogrammed
//! workload mixes of the Re-NUCA evaluation.
//!
//! The paper drives its 16-core CMP with SPEC CPU2006 reference runs
//! (2 B-instruction fast-forward + 100 M simulated per core). SPEC binaries
//! and reference inputs are not redistributable, and no gem5 checkpoints
//! exist here — so, per the reproduction's substitution rule, each
//! application is replaced by a **statistical model** that reproduces the
//! properties Re-NUCA actually consumes:
//!
//! * the last-level-cache write intensity (WPKI + MPKI, Table II) that
//!   drives bank wear,
//! * the L3 hit rate (capacity behaviour),
//! * the load criticality structure: how much memory-level parallelism
//!   surrounds each miss, which decides whether the miss blocks the head of
//!   the ROB (Figure 5's ~80% non-critical loads, Figure 8's ~50%
//!   non-critical fetched blocks),
//! * the per-PC loop structure the Criticality Predictor Table indexes.
//!
//! Each model ([`model::AppModel`]) mixes accesses over three regions —
//! a *hot* set (L1-resident), a *mid* set (L3-resident, misses L2: the
//! writeback/WPKI driver) and a *big* set (exceeds the L3: the miss/MPKI
//! driver, streaming or random) — with per-region store fractions, a
//! burstiness knob for MLP, and a deterministic PC pool per region. The 22
//! parameter sets live in [`spec::SPEC_TABLE`], one per Table II row. A
//! separate synthetic family ([`wburst`]) saturates the L3 bank service
//! model with escalating write pressure — not a Table II reproduction.
//!
//! Determinism: every model is seeded; the same (app, seed) pair generates
//! the identical instruction stream on every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mixes;
pub mod model;
pub mod spec;
pub mod wburst;

pub use mixes::{is_workload_id, workload_mix, WorkloadMix, N_WORKLOADS};
pub use model::AppModel;
pub use spec::{app_by_name, AppSpec, WriteIntensity, SPEC_TABLE};
pub use wburst::{N_WBURST, TRICKLE_ID, WBURST_ID_BASE, WBURST_TABLE};
