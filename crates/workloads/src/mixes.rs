//! The multiprogrammed 16-core workload mixes WL1–WL10.
//!
//! Paper §V.A: *"We further formed 16-core workloads by randomly choosing
//! applications from the high write-intensive ones along with the medium-
//! and low-intensive ones … we choose workloads such that we always run
//! high memory-intensive applications with low/medium write-intensive
//! applications."* The exact mixes are not published; we generate ten
//! deterministic mixes with the same recipe: every workload combines
//! several high-intensity applications with medium/low ones, seeded so that
//! WL*k* is identical on every machine and run.

use sim_rng::SimRng;

use crate::model::AppModel;
use crate::spec::{AppSpec, WriteIntensity, SPEC_TABLE};
use crate::wburst::{wburst_level, TRICKLE, TRICKLE_ID, WBURST_ID_BASE, WBURST_TABLE};
use cmp_sim::instr::InstrSource;

/// Number of evaluation workloads (paper: 10).
pub const N_WORKLOADS: usize = 10;

/// Is `id` a valid argument to [`workload_mix`]? Covers the paper mixes
/// WL1–WL10 plus the write-burst family (WB1–WB4, trickle; see
/// [`crate::wburst`]).
pub fn is_workload_id(id: usize) -> bool {
    (1..=N_WORKLOADS).contains(&id) || wburst_level(id).is_some() || id == TRICKLE_ID
}

/// One 16-core multiprogrammed workload.
#[derive(Clone, Debug)]
pub struct WorkloadMix {
    /// Workload id, 1-based ("WL1" … "WL10").
    pub id: usize,
    /// The application running on each core (index = core id).
    pub apps: Vec<&'static AppSpec>,
}

impl WorkloadMix {
    /// Display name ("WL3", "WB2", "trickle").
    pub fn name(&self) -> String {
        if self.id == TRICKLE_ID {
            "trickle".to_owned()
        } else if let Some(level) = wburst_level(self.id) {
            format!("WB{level}")
        } else {
            format!("WL{}", self.id)
        }
    }

    /// Count of apps in each intensity class `(high, medium, low)`.
    pub fn intensity_mix(&self) -> (usize, usize, usize) {
        let mut h = 0;
        let mut m = 0;
        let mut l = 0;
        for a in &self.apps {
            match a.paper_intensity() {
                WriteIntensity::High => h += 1,
                WriteIntensity::Medium => m += 1,
                WriteIntensity::Low => l += 1,
            }
        }
        (h, m, l)
    }

    /// Instantiate the per-core instruction sources. Seeds mix the workload
    /// id and core id so every (workload, core) pair is deterministic but
    /// distinct.
    pub fn build_sources(&self) -> Vec<Box<dyn InstrSource>> {
        self.apps
            .iter()
            .enumerate()
            .map(|(core, spec)| {
                let seed = (self.id as u64) << 32 | core as u64;
                Box::new(AppModel::new(**spec, seed)) as Box<dyn InstrSource>
            })
            .collect()
    }
}

/// Build workload `id` (1-based) for `n_cores` cores.
///
/// Recipe per the paper: sample `n_cores × 5/16` (≥ 2) high-intensity apps
/// and fill the rest from the medium/low pool, then shuffle core
/// assignment. Deterministic in `(id, n_cores)`.
///
/// The write-burst family rides the same id space: WB levels
/// (`WBURST_ID_BASE + 1..=WBURST_ID_BASE + 4`) and the trickle probe
/// ([`TRICKLE_ID`]) build *homogeneous* mixes — every core runs the same
/// synthetic app (distinct per-core seeds) so bank pressure scales with
/// the level and nothing else.
///
/// # Panics
/// Panics when `id` is not a valid workload id (see [`is_workload_id`]).
pub fn workload_mix(id: usize, n_cores: usize) -> WorkloadMix {
    if id == TRICKLE_ID {
        return WorkloadMix {
            id,
            apps: vec![&TRICKLE; n_cores],
        };
    }
    if let Some(level) = wburst_level(id) {
        return WorkloadMix {
            id,
            apps: vec![&WBURST_TABLE[level - 1]; n_cores],
        };
    }
    assert!(
        (1..=N_WORKLOADS).contains(&id),
        "workload id must be 1..={N_WORKLOADS} or a write-burst id \
         ({}..={TRICKLE_ID}), got {id}",
        WBURST_ID_BASE + 1
    );
    let mut rng = SimRng::seed_from_u64(0xC0FFEE ^ (id as u64).wrapping_mul(0x9E3779B97F4A7C15));

    let high: Vec<&AppSpec> = SPEC_TABLE
        .iter()
        .filter(|a| a.paper_intensity() == WriteIntensity::High)
        .collect();
    let rest: Vec<&AppSpec> = SPEC_TABLE
        .iter()
        .filter(|a| a.paper_intensity() != WriteIntensity::High)
        .collect();

    let n_high = ((n_cores * 5) / 16).max(2).min(n_cores);
    let mut apps: Vec<&'static AppSpec> = Vec::with_capacity(n_cores);
    for i in 0..n_high {
        apps.push(high[(rng.gen_range_usize(0..high.len() * 2) + i) % high.len()]);
    }
    while apps.len() < n_cores {
        apps.push(rest[rng.gen_range_usize(0..rest.len())]);
    }
    rng.shuffle(&mut apps);
    WorkloadMix { id, apps }
}

/// All ten workloads for `n_cores` cores.
pub fn all_workloads(n_cores: usize) -> Vec<WorkloadMix> {
    (1..=N_WORKLOADS)
        .map(|id| workload_mix(id, n_cores))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads_of_16() {
        let wls = all_workloads(16);
        assert_eq!(wls.len(), 10);
        for wl in &wls {
            assert_eq!(wl.apps.len(), 16);
        }
    }

    #[test]
    fn every_workload_mixes_high_with_low_or_medium() {
        for wl in all_workloads(16) {
            let (h, m, l) = wl.intensity_mix();
            assert!(h >= 2, "{}: needs ≥2 high apps, has {h}", wl.name());
            assert!(
                m + l >= 4,
                "{}: needs medium/low ballast, has {}",
                wl.name(),
                m + l
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = workload_mix(3, 16);
        let b = workload_mix(3, 16);
        let names_a: Vec<_> = a.apps.iter().map(|s| s.name).collect();
        let names_b: Vec<_> = b.apps.iter().map(|s| s.name).collect();
        assert_eq!(names_a, names_b);
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let a = workload_mix(1, 16);
        let b = workload_mix(2, 16);
        let names_a: Vec<_> = a.apps.iter().map(|s| s.name).collect();
        let names_b: Vec<_> = b.apps.iter().map(|s| s.name).collect();
        assert_ne!(names_a, names_b);
    }

    #[test]
    fn small_core_counts_supported() {
        for n in [1, 4] {
            let wl = workload_mix(1, n);
            assert_eq!(wl.apps.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "workload id")]
    fn id_zero_rejected() {
        workload_mix(0, 16);
    }

    #[test]
    fn sources_carry_app_labels() {
        let wl = workload_mix(1, 4);
        let sources = wl.build_sources();
        for (i, s) in sources.iter().enumerate() {
            assert_eq!(s.label(), wl.apps[i].name);
        }
    }

    #[test]
    fn name_formatting() {
        assert_eq!(workload_mix(7, 16).name(), "WL7");
        assert_eq!(workload_mix(102, 16).name(), "WB2");
        assert_eq!(workload_mix(105, 1).name(), "trickle");
    }

    #[test]
    fn wburst_mixes_are_homogeneous() {
        for id in 101..=104 {
            let wl = workload_mix(id, 16);
            assert_eq!(wl.apps.len(), 16);
            assert!(wl.apps.iter().all(|a| a.name == wl.apps[0].name));
            let (h, _, _) = wl.intensity_mix();
            assert_eq!(h, 16, "{}: every core must burst writes", wl.name());
        }
    }

    #[test]
    fn workload_id_validity() {
        for id in 1..=10 {
            assert!(is_workload_id(id), "{id}");
        }
        for id in 101..=105 {
            assert!(is_workload_id(id), "{id}");
        }
        for id in [0, 11, 99, 100, 106] {
            assert!(!is_workload_id(id), "{id}");
        }
    }

    #[test]
    #[should_panic(expected = "workload id")]
    fn id_between_families_rejected() {
        workload_mix(100, 16);
    }
}
