//! Property-based tests for the synthetic application models, driven by
//! seeded `sim-rng` generator loops (hermetic replacement for proptest).

use sim_rng::SimRng;

use cmp_sim::instr::{Instr, InstrSource};
use workloads::{workload_mix, AppModel, SPEC_TABLE};

const CASES: usize = 24;

/// Determinism: any (app, seed) pair regenerates the identical stream.
#[test]
fn any_app_any_seed_deterministic() {
    let mut rng = SimRng::seed_from_u64(0x307C_0001);
    for case in 0..CASES {
        let spec = SPEC_TABLE[rng.gen_range_usize(0..22)];
        let seed = rng.next_u64();
        let mut a = AppModel::new(spec, seed);
        let mut b = AppModel::new(spec, seed);
        for _ in 0..2_000 {
            assert_eq!(
                a.next_instr(),
                b.next_instr(),
                "case {case} ({})",
                spec.name
            );
        }
    }
}

/// Addresses always fall inside the app's declared regions, and loads
/// are word-addressable within the core's 256 MB slice.
#[test]
fn addresses_bounded() {
    let mut rng = SimRng::seed_from_u64(0x307C_0002);
    for case in 0..CASES {
        let spec = SPEC_TABLE[rng.gen_range_usize(0..22)];
        let seed = rng.next_u64();
        let mut m = AppModel::new(spec, seed);
        for _ in 0..5_000 {
            match m.next_instr() {
                Instr::Load { vaddr, .. } | Instr::Store { vaddr, .. } => {
                    assert!(
                        vaddr < 1 << 28,
                        "case {case}: vaddr {vaddr:#x} outside core slice"
                    );
                }
                Instr::Alu { latency } => assert!(latency >= 1, "case {case}"),
            }
        }
    }
}

/// The memory-op fraction stays within a sane band of the spec for
/// every app (the pending read-modify-write stores replace, not add,
/// memory slots).
#[test]
fn mem_fraction_banded() {
    // Exhaustive over apps rather than sampled: 22 cases, one per spec.
    for spec in SPEC_TABLE.iter() {
        let mut m = AppModel::new(*spec, 7);
        let n = 60_000;
        let mut mem = 0usize;
        for _ in 0..n {
            if m.next_instr().is_mem() {
                mem += 1;
            }
        }
        let frac = mem as f64 / n as f64;
        assert!(
            (frac - spec.mem_frac).abs() < 0.05,
            "{}: measured {frac:.3} vs spec {:.3}",
            spec.name,
            spec.mem_frac
        );
    }
}

/// Workload mixes are deterministic and structurally sound for any id.
#[test]
fn mixes_sound() {
    for id in 1..=10 {
        let a = workload_mix(id, 16);
        let b = workload_mix(id, 16);
        let names_a: Vec<_> = a.apps.iter().map(|s| s.name).collect();
        let names_b: Vec<_> = b.apps.iter().map(|s| s.name).collect();
        assert_eq!(names_a, names_b);
        assert_eq!(a.apps.len(), 16);
        let (h, m, l) = a.intensity_mix();
        assert_eq!(h + m + l, 16);
        assert!(h >= 2, "WL{id}: {h} high-intensity apps");
    }
}
