//! Property-based tests for the synthetic application models.

use proptest::prelude::*;

use cmp_sim::instr::{Instr, InstrSource};
use workloads::{workload_mix, AppModel, SPEC_TABLE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Determinism: any (app, seed) pair regenerates the identical stream.
    #[test]
    fn any_app_any_seed_deterministic(app_idx in 0usize..22, seed in any::<u64>()) {
        let spec = SPEC_TABLE[app_idx];
        let mut a = AppModel::new(spec, seed);
        let mut b = AppModel::new(spec, seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    /// Addresses always fall inside the app's declared regions, and loads
    /// are word-addressable within the core's 256 MB slice.
    #[test]
    fn addresses_bounded(app_idx in 0usize..22, seed in any::<u64>()) {
        let spec = SPEC_TABLE[app_idx];
        let mut m = AppModel::new(spec, seed);
        for _ in 0..5_000 {
            match m.next_instr() {
                Instr::Load { vaddr, .. } | Instr::Store { vaddr, .. } => {
                    prop_assert!(vaddr < 1 << 28, "vaddr {vaddr:#x} outside core slice");
                }
                Instr::Alu { latency } => prop_assert!(latency >= 1),
            }
        }
    }

    /// The memory-op fraction stays within a sane band of the spec for
    /// every app (the pending read-modify-write stores replace, not add,
    /// memory slots).
    #[test]
    fn mem_fraction_banded(app_idx in 0usize..22) {
        let spec = SPEC_TABLE[app_idx];
        let mut m = AppModel::new(spec, 7);
        let n = 60_000;
        let mut mem = 0usize;
        for _ in 0..n {
            if m.next_instr().is_mem() {
                mem += 1;
            }
        }
        let frac = mem as f64 / n as f64;
        prop_assert!(
            (frac - spec.mem_frac).abs() < 0.05,
            "{}: measured {frac:.3} vs spec {:.3}",
            spec.name,
            spec.mem_frac
        );
    }

    /// Workload mixes are deterministic and structurally sound for any id.
    #[test]
    fn mixes_sound(id in 1usize..=10) {
        let a = workload_mix(id, 16);
        let b = workload_mix(id, 16);
        let names_a: Vec<_> = a.apps.iter().map(|s| s.name).collect();
        let names_b: Vec<_> = b.apps.iter().map(|s| s.name).collect();
        prop_assert_eq!(names_a, names_b);
        prop_assert_eq!(a.apps.len(), 16);
        let (h, m, l) = a.intensity_mix();
        prop_assert_eq!(h + m + l, 16);
        prop_assert!(h >= 2);
    }
}
