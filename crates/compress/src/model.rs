//! The seeded size-class content model and sub-block layout arithmetic.
//!
//! A 64 B line is split into `sub_blocks` equal sub-blocks (default 4 ×
//! 16 B, the granularity L2C2 compacts at). Every write of a line draws a
//! size class from a deterministic hash of `(seed, line, version)` where
//! `version` counts the writes the line has received *while resident* —
//! the class therefore changes over a line's lifetime exactly like real
//! data compressibility drifts, and a class larger than the currently
//! allocated one forces an **expansion** (the line is re-compacted into a
//! bigger allocation, an extra data-array program).
//!
//! The written sub-blocks rotate: a class-`c` write at version `v` starts
//! at sub-block `v % sub_blocks` and covers `c` consecutive sub-blocks
//! (mod `sub_blocks`). Rotation spreads cell wear across the line, which
//! is what the `wear.subblock_cv` gauge measures and the forecast's
//! uniform-wear assumption relies on.

/// Occurrence probabilities of size classes 1, 2 and 4 sub-blocks, in
/// that order. Pinned: the hash below realizes exactly this distribution
/// over its bottom two bits, and the forecast closed form integrates it.
pub const CLASS_PROBABILITIES: [(u8, f64); 3] = [(1, 0.5), (2, 0.25), (4, 0.25)];

/// A 64-bit finalizer (Murmur3 fmix64): full avalanche, so the class
/// bits are unbiased for any address stride.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Size class (compressed size in sub-blocks) of writing `line` at write
/// `version`, before clamping to the line's sub-block count: 1 with
/// probability 1/2, 2 with 1/4, 4 with 1/4 (see [`CLASS_PROBABILITIES`]).
pub fn size_class(seed: u64, line: u64, version: u32) -> u8 {
    let h = mix(seed
        ^ line.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (u64::from(version) << 1 | 1).wrapping_mul(0xd1b5_4a32_d192_ed03));
    match h & 3 {
        0 | 1 => 1,
        2 => 2,
        _ => 4,
    }
}

/// Bitmask (bit `k` = sub-block `k`) of the sub-blocks a class-`class`
/// write at `version` programs: `class` consecutive sub-blocks starting
/// at `version % sub_blocks`, wrapping.
///
/// # Panics
/// Panics if `sub_blocks` is 0 or exceeds 64.
pub fn subblock_mask(sub_blocks: usize, class: u8, version: u32) -> u64 {
    assert!(sub_blocks >= 1 && sub_blocks <= 64, "sub_blocks in 1..=64");
    let c = (class as usize).min(sub_blocks);
    let start = version as usize % sub_blocks;
    let mut mask = 0u64;
    for k in 0..c {
        mask |= 1 << ((start + k) % sub_blocks);
    }
    mask
}

/// The compression knob bundle a placement policy advertises to the
/// hierarchy (via `LlcPlacement::compression`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompressSpec {
    /// Sub-blocks per line. Must divide the 64 B line size; the config
    /// validator enforces it.
    pub sub_blocks: usize,
    /// Content-model seed: two systems with the same seed compress
    /// identically.
    pub seed: u64,
    /// **Bug switch for the mutation self-check** — never set by
    /// `Scheme::build_policy`. When true the hierarchy also triggers an
    /// expansion when the new class merely *equals* the allocation,
    /// inflating the expansion counters the golden twin cross-checks.
    pub expand_on_equal: bool,
}

impl CompressSpec {
    /// A spec with the given geometry and seed (bug switch off).
    pub fn new(sub_blocks: usize, seed: u64) -> Self {
        CompressSpec {
            sub_blocks,
            seed,
            expand_on_equal: false,
        }
    }

    /// Size class of writing `line` at `version`, clamped to the line's
    /// sub-block count.
    pub fn class_of(&self, line: u64, version: u32) -> u8 {
        size_class(self.seed, line, version).min(self.sub_blocks as u8)
    }

    /// Sub-block write mask of writing `line` at `version`.
    pub fn mask_of(&self, line: u64, version: u32) -> u64 {
        subblock_mask(self.sub_blocks, self.class_of(line, version), version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_deterministic_and_seeded() {
        for line in 0..64u64 {
            for v in 0..8u32 {
                assert_eq!(size_class(7, line, v), size_class(7, line, v));
            }
        }
        // A different seed must reshuffle at least one class over a small
        // sample (fails with probability ~(3/8)^64 if the seed were dead).
        let differs = (0..64u64).any(|l| size_class(1, l, 0) != size_class(2, l, 0));
        assert!(differs, "seed must influence the class");
    }

    #[test]
    fn class_distribution_matches_pin() {
        // Over a large sample the empirical distribution must sit within
        // a percent of the pinned 1/2, 1/4, 1/4.
        let n = 200_000u64;
        let mut counts = [0u64; 5];
        for i in 0..n {
            counts[size_class(0xC0DEC, i, (i % 7) as u32) as usize] += 1;
        }
        let p1 = counts[1] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        let p4 = counts[4] as f64 / n as f64;
        assert!((p1 - 0.5).abs() < 0.01, "p1 = {p1}");
        assert!((p2 - 0.25).abs() < 0.01, "p2 = {p2}");
        assert!((p4 - 0.25).abs() < 0.01, "p4 = {p4}");
        assert_eq!(counts[0] + counts[3], 0);
    }

    #[test]
    fn masks_rotate_and_wrap() {
        // Class 2 at version 0 on 4 sub-blocks: blocks {0,1}.
        assert_eq!(subblock_mask(4, 2, 0), 0b0011);
        // Version 3: starts at 3, wraps to 0 -> blocks {3,0}.
        assert_eq!(subblock_mask(4, 2, 3), 0b1001);
        // Class 4 always covers the whole line.
        assert_eq!(subblock_mask(4, 4, 2), 0b1111);
        // Clamp: class 4 on a 2-sub-block line covers both.
        assert_eq!(subblock_mask(2, 4, 1), 0b11);
    }

    #[test]
    fn mask_popcount_equals_clamped_class() {
        let spec = CompressSpec::new(4, 99);
        for line in 0..256u64 {
            for v in 0..16u32 {
                let mask = spec.mask_of(line, v);
                assert_eq!(mask.count_ones() as u8, spec.class_of(line, v));
                assert!(mask < 16, "mask within 4 sub-blocks");
            }
        }
    }

    #[test]
    #[should_panic(expected = "sub_blocks in 1..=64")]
    fn zero_subblocks_rejected() {
        subblock_mask(0, 1, 0);
    }
}
