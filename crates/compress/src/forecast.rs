//! The L2C2 analytical lifetime forecast (arXiv:2204.03512), ported to
//! this simulator's wear model.
//!
//! The forecast's pitch: once you know a workload's **write distribution**
//! on the uncompressed cache and the **compression-ratio distribution** of
//! its lines, the compressed cache's lifetime follows in closed form — no
//! re-simulation. In their notation the per-cell write rate scales by the
//! expected fraction of the line each compressed write programs; lifetime,
//! being endurance divided by the per-cell write rate, scales by the
//! inverse:
//!
//! ```text
//! lifetime_compressed(bank) = lifetime_uncompressed(bank) * S / E[c]
//! ```
//!
//! where `S` is the number of sub-blocks per line and `E[c]` the expected
//! size class (expected compressed size in sub-blocks) under the content
//! model's pinned distribution ([`crate::CLASS_PROBABILITIES`]). Rotation
//! of the written sub-blocks (see [`crate::model`]) makes the intra-line
//! wear uniform, which is the assumption that lets the scaling apply
//! per-cell.
//!
//! For the default 4-sub-block line, `E[c] = 0.5·1 + 0.25·2 + 0.25·4 = 2`,
//! so compression forecasts a **2× lifetime gain** at equal placement.
//!
//! The forecast is deliberately *independent* of the sub-block wear
//! instrumentation: it consumes only the uncompressed run's per-bank
//! lifetimes. `experiments::forecast` cross-checks it against fully
//! simulated compressed lifetimes on every workload, within
//! [`FORECAST_TOLERANCE`] — a second verification path beside the golden
//! model, and the acceptance gate of the compression campaign.

use crate::model::CLASS_PROBABILITIES;

/// Documented relative tolerance of the forecast-vs-simulation
/// cross-check (15%). The comparison is iso-timing (see
/// `experiments::forecast`), so the residual has two sources:
/// finite-sample noise of the realized class distribution, and cross-run
/// divergence of a *shared* 16-core cache — the compressed run's
/// expansion slowdown changes how core request streams interleave, which
/// shifts conflict evictions and with them per-bank writeback totals by
/// up to ~12% on interleaving-sensitive mixes (WL1 at full budget).
/// Systematic model breakage sits far outside this band: dropping the
/// iso-timing correction alone reads as 29%, and a wear-charging bug
/// (full-line aging) as ~50%, so the gate keeps its teeth.
pub const FORECAST_TOLERANCE: f64 = 0.15;

/// Expected size class `E[min(c, sub_blocks)]` under the pinned class
/// distribution, clamped the same way the model clamps (a class larger
/// than the line's sub-block count occupies the whole line).
pub fn expected_class(sub_blocks: usize) -> f64 {
    CLASS_PROBABILITIES
        .iter()
        .map(|&(c, p)| p * f64::from(c.min(sub_blocks as u8)))
        .sum()
}

/// The forecast lifetime-gain factor `S / E[c]`: how much longer the
/// compressed cache lives at equal placement. 2.0 for the default
/// 4-sub-block line; 1.0 when `sub_blocks == 1` (no compaction possible).
pub fn lifetime_gain(sub_blocks: usize) -> f64 {
    sub_blocks as f64 / expected_class(sub_blocks)
}

/// Apply the closed form to a vector of per-bank uncompressed lifetimes.
pub fn forecast_bank_lifetimes(uncompressed_years: &[f64], sub_blocks: usize) -> Vec<f64> {
    let gain = lifetime_gain(sub_blocks);
    uncompressed_years.iter().map(|&y| y * gain).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_class_pins() {
        assert!((expected_class(4) - 2.0).abs() < 1e-12);
        assert!((expected_class(64) - 2.0).abs() < 1e-12);
        // 2-sub-block line: class 4 clamps to 2 -> 0.5 + 0.25*2 + 0.25*2.
        assert!((expected_class(2) - 1.5).abs() < 1e-12);
        assert!((expected_class(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gain_pins() {
        assert!((lifetime_gain(4) - 2.0).abs() < 1e-12);
        assert!((lifetime_gain(2) - 2.0 / 1.5).abs() < 1e-12);
        assert!((lifetime_gain(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forecast_scales_per_bank() {
        let base = [1.0, 2.5, 0.0];
        let f = forecast_bank_lifetimes(&base, 4);
        assert_eq!(f, vec![2.0, 5.0, 0.0]);
    }

    #[test]
    fn empirical_class_mean_matches_closed_form() {
        // The realized mean class over a large (line, version) sample must
        // land on E[c] — the bridge between the hash and the closed form.
        let spec = crate::CompressSpec::new(4, 0xC0DEC);
        let mut sum = 0u64;
        let n = 100_000u64;
        for i in 0..n {
            sum += u64::from(spec.class_of(i * 31, (i % 11) as u32));
        }
        let mean = sum as f64 / n as f64;
        assert!(
            (mean - expected_class(4)).abs() < 0.02,
            "empirical mean class {mean}"
        );
    }
}
