//! Deterministic per-line compression model for the compressed ReRAM LLC
//! (ROADMAP item 4: L2C2, Escuin et al., arXiv:2204.09504) plus the
//! analytical lifetime forecast of their companion procedure
//! (arXiv:2204.03512).
//!
//! The simulator has no data contents — applications are statistical
//! models — so compressibility itself is modelled: a seeded hash of
//! `(line, version)` assigns every write of a line a **size class** (how
//! many 16-byte sub-blocks the compressed line occupies). The model is
//! deliberately simple but has the two properties the study needs:
//!
//! * **determinism** — the same `(seed, line, version)` always compresses
//!   to the same class, so the golden twin in `crates/golden` (which
//!   re-implements the hash independently) and the real hierarchy stay in
//!   lockstep and the differential harness can bit-compare their
//!   compression directories;
//! * **a pinned class distribution** — classes 1/2/4 occur with
//!   probability 1/2, 1/4, 1/4, giving an expected compressed size of 2
//!   sub-blocks per write on a 4-sub-block line. The forecast closed form
//!   ([`forecast`]) consumes exactly this distribution, which is what
//!   makes the analytical lifetime cross-check meaningful.
//!
//! [`CompressSpec`] is the knob bundle a placement policy advertises
//! through `LlcPlacement::compression`; `cmp-sim`'s hierarchy turns it
//! into per-slot class/version state, sub-block wear accounting and
//! expansion re-fills.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod forecast;
pub mod model;

pub use forecast::{expected_class, forecast_bank_lifetimes, lifetime_gain, FORECAST_TOLERANCE};
pub use model::{size_class, subblock_mask, CompressSpec, CLASS_PROBABILITIES};
