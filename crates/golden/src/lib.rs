//! A deliberately naive golden reference model for differential testing.
//!
//! This crate re-implements, from the documented semantics, everything the
//! differential harness needs to second-guess the optimized simulator:
//!
//! * [`cache`] — a stamp-based set-associative cache using per-set `Vec`s and
//!   modulo indexing,
//! * [`policy`] — all five LLC placement policies (S-NUCA, R-NUCA, Private,
//!   Naive, Re-NUCA) with `BTreeMap` state instead of the open-addressed
//!   tables and hardware-shaped TLB of `renuca-core`,
//! * [`cpt`] — the Criticality Prediction Table,
//! * [`compress`] — the L2C2 size-class content model, sub-block masks and
//!   per-cell wear for the compressed Re-NUCA-C2 variant,
//! * [`hierarchy`] — a [`GoldenSystem`] replaying the L1 → L2 → L3 → DRAM
//!   state machine of `cmp_sim::hierarchy::MemoryHierarchy` step by step,
//! * [`trace`] — a seeded workload-trace generator and the compact
//!   `renuca-trace-v1` text format the harness replays and shrinks.
//!
//! The only things consumed from `cmp-sim` are configuration/geometry types
//! and the address-layout constants; every behavioural component is written
//! here independently, with zero optimization, so that a bug in the fast
//! path and a bug in the reference are unlikely to coincide.
//!
//! The comparison contract: for any replayed trace, the golden model and the
//! real hierarchy must agree on every fill/writeback placement event (core,
//! bank, line), every per-core and hierarchy-level counter, the per-bank and
//! per-slot wear histograms, the final MBV contents (Re-NUCA), and the Naive
//! oracle's directory size and write counters. `crates/experiments/src/diff.rs`
//! hosts the runner that enforces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod compress;
pub mod cpt;
pub mod hierarchy;
pub mod policy;
pub mod trace;

pub use cache::GoldenCache;
pub use compress::{golden_size_class, golden_subblock_mask, GoldenCompress};
pub use cpt::GoldenCpt;
pub use hierarchy::{GoldenEvent, GoldenEventKind, GoldenSystem};
pub use policy::{GoldenPolicy, GoldenScheme, GOLDEN_COLORING_EPOCH, GOLDEN_WEC_THRESHOLD};
pub use trace::{generate, parse_trace, trace_to_text, TraceOp, TraceSpec};
