//! The golden memory-hierarchy state machine.
//!
//! [`GoldenSystem`] replays the *state* semantics of
//! `cmp_sim::hierarchy::MemoryHierarchy` — cache contents, inclusion,
//! coherence directory, per-bank/per-slot wear, placement-policy state and
//! every compared counter — with none of the timing model (mesh, DRAM and
//! latency accounting have no state the harness compares, except the DRAM
//! row buffers, which are not compared either). The exact *order* of state
//! effects is preserved, because LRU stamps and the Naive oracle's write
//! counters are order-sensitive.
//!
//! Preconditions (asserted at construction): prefetching disabled, no
//! intra-bank rotation, no block-criticality tracking — the harness
//! configuration. Under rotation or prefetching the golden model would
//! need the timing model too, defeating its purpose as a simple oracle.

use std::collections::BTreeMap;

use cmp_sim::config::SystemConfig;
use cmp_sim::types::line_of;

use crate::cache::GoldenCache;
use crate::compress::GoldenCompress;
use crate::policy::{GoldenPolicy, GoldenScheme};

/// What kind of L3 write an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoldenEventKind {
    /// A line installed into a bank on an L3 miss.
    Fill,
    /// A dirty L2 victim written back into its bank.
    Writeback,
}

/// One placement-relevant event, comparable against the real hierarchy's
/// `TraceEvent::Fill` / `TraceEvent::Writeback` with the timing-dependent
/// `cycle` field ignored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GoldenEvent {
    /// Fill or writeback.
    pub kind: GoldenEventKind,
    /// The core the access (or eviction) belongs to.
    pub core: usize,
    /// The bank the write landed in.
    pub bank: usize,
    /// The line address.
    pub line: u64,
}

/// Per-core counters (compared against `PerCoreMemStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GoldenPerCore {
    /// L1 demand misses.
    pub l1_misses: u64,
    /// Accesses that reached the L3.
    pub l3_accesses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Dirty L2 victims written back.
    pub l2_writebacks: u64,
}

/// Hierarchy-level counters (compared against `HierarchyStats`; the
/// prefetch/rotation/secondary counters stay 0 under the harness
/// preconditions and are asserted 0 on the real side).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GoldenHierarchyStats {
    /// Fills into L3 banks.
    pub l3_fills: u64,
    /// Fills whose triggering load was predicted non-critical.
    pub l3_fills_noncritical: u64,
    /// All writes into L3 banks.
    pub l3_writes: u64,
    /// Dirty L3 victims written to DRAM.
    pub l3_writebacks_to_dram: u64,
    /// Private-cache lines invalidated by inclusive-L3 evictions.
    pub back_invalidations: u64,
}

/// Coherence-directory counters (compared against `CoherenceStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GoldenDirStats {
    /// Reads granting Exclusive.
    pub grants_exclusive: u64,
    /// Reads downgrading to Shared.
    pub grants_shared: u64,
    /// Writes upgrading to Modified.
    pub upgrades_modified: u64,
    /// Invalidations sent to other sharers on writes.
    pub invalidations_sent: u64,
    /// Back-invalidations from inclusive-L3 evictions.
    pub back_invalidations: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    sharers: u32,
    exclusive: bool,
}

/// The golden reference system.
pub struct GoldenSystem {
    n_cores: usize,
    n_banks: usize,
    l1: Vec<GoldenCache>,
    l2: Vec<GoldenCache>,
    l3: Vec<GoldenCache>,
    dir: BTreeMap<u64, DirEntry>,
    /// Per-bank, per-slot write counts (slot = set × assoc + way).
    pub wear: Vec<Vec<u64>>,
    /// Compressed-array state, present only for Re-NUCA-C2.
    pub compress: Option<GoldenCompress>,
    /// Per-core counters.
    pub per_core: Vec<GoldenPerCore>,
    /// Hierarchy counters.
    pub stats: GoldenHierarchyStats,
    /// Directory counters.
    pub dir_stats: GoldenDirStats,
    /// The placement policy model.
    pub policy: GoldenPolicy,
}

impl GoldenSystem {
    /// Build the golden system for `cfg` with the given policy model.
    ///
    /// # Panics
    /// Panics when `cfg` enables prefetching, intra-bank rotation or
    /// block-criticality tracking (outside the golden model's scope).
    pub fn new(cfg: &SystemConfig, policy: GoldenPolicy) -> Self {
        cfg.validate();
        assert!(
            !cfg.prefetch.enabled || cfg.prefetch.streams == 0,
            "golden model requires prefetching disabled"
        );
        assert!(
            cfg.intra_bank_rotation_writes.is_none(),
            "golden model requires intra-bank rotation disabled"
        );
        assert!(
            !cfg.track_block_criticality,
            "golden model requires block-criticality tracking disabled"
        );
        GoldenSystem {
            n_cores: cfg.n_cores,
            n_banks: cfg.n_banks,
            l1: (0..cfg.n_cores)
                .map(|_| GoldenCache::new(cfg.l1.lines(), cfg.l1.assoc, false))
                .collect(),
            l2: (0..cfg.n_cores)
                .map(|_| GoldenCache::new(cfg.l2.lines(), cfg.l2.assoc, false))
                .collect(),
            // MAC banks run clean-first victim selection, matching
            // `LlcPlacement::l3_replacement` on the real side.
            l3: (0..cfg.n_banks)
                .map(|_| {
                    GoldenCache::with_write_aware(
                        cfg.l3_bank.lines(),
                        cfg.l3_bank.assoc,
                        true,
                        policy.scheme().write_aware_replacement(),
                    )
                })
                .collect(),
            dir: BTreeMap::new(),
            wear: vec![vec![0; cfg.l3_bank.lines()]; cfg.n_banks],
            compress: (policy.scheme() == GoldenScheme::ReNucaC2).then(|| {
                GoldenCompress::new(
                    cfg.n_banks,
                    cfg.l3_bank.lines(),
                    cfg.l3_subblocks,
                    cfg.compress_seed,
                )
            }),
            per_core: vec![GoldenPerCore::default(); cfg.n_cores],
            stats: GoldenHierarchyStats::default(),
            dir_stats: GoldenDirStats::default(),
            policy,
        }
    }

    /// Number of cores (= mesh tiles).
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Number of L3 banks.
    pub fn n_banks(&self) -> usize {
        self.n_banks
    }

    /// Total writes absorbed by `bank`.
    pub fn bank_writes(&self, bank: usize) -> u64 {
        self.wear[bank].iter().sum()
    }

    /// Per-bank write totals.
    pub fn bank_totals(&self) -> Vec<u64> {
        (0..self.n_banks).map(|b| self.bank_writes(b)).collect()
    }

    /// Whether `line` resides in L3 bank `bank`.
    pub fn l3_bank_contains(&self, bank: usize, line: u64) -> bool {
        self.l3[bank].contains(line)
    }

    /// Replay one memory access; returns the placement events it caused in
    /// emission order.
    pub fn step(
        &mut self,
        core: usize,
        phys: u64,
        predicted_critical: bool,
        is_store: bool,
    ) -> Vec<GoldenEvent> {
        let mut events = Vec::new();
        let line = line_of(phys);

        if self.l1[core].access(line, is_store) {
            return events;
        }
        self.per_core[core].l1_misses += 1;

        if self.l2[core].access(line, false) {
            self.fill_l2_l1(core, line, is_store, &mut events);
            return events;
        }

        self.per_core[core].l3_accesses += 1;
        let predicted = predicted_critical && !is_store;
        let bank = self.policy.lookup_bank(line);
        if self.l3[bank].access(line, false) {
            self.per_core[core].l3_hits += 1;
        } else {
            // No secondary probe: none of the five modelled policies has a
            // second candidate bank.
            self.per_core[core].l3_misses += 1;
            let fill_bank = self.policy.fill_bank(line, predicted);
            self.fill_l3(core, line, predicted, fill_bank, &mut events);
        }

        if is_store {
            // Write-invalidate: every other sharer's private copy is
            // dropped (dirty data superseded by the incoming store),
            // mirroring the real hierarchy's store path.
            for holder in self.dir_write(line, core) {
                self.l1[holder].invalidate(line);
                self.l2[holder].invalidate(line);
            }
        } else {
            self.dir_read(line, core);
        }
        self.fill_l2_l1(core, line, is_store, &mut events);
        events
    }

    fn fill_l3(
        &mut self,
        core: usize,
        line: u64,
        predicted: bool,
        bank: usize,
        events: &mut Vec<GoldenEvent>,
    ) {
        #[cfg(debug_assertions)]
        for (b, l3) in self.l3.iter().enumerate() {
            debug_assert!(
                !l3.contains(line),
                "golden: line {line:#x} already in bank {b}; fill into {bank} would duplicate"
            );
        }
        let out = self.l3[bank].fill(line, false);
        let slot = self.l3[bank].slot_index(out.set, out.way);
        self.charge_write(bank, slot, line, true);
        self.stats.l3_fills += 1;
        self.stats.l3_writes += 1;
        events.push(GoldenEvent {
            kind: GoldenEventKind::Fill,
            core,
            bank,
            line,
        });
        if !predicted {
            self.stats.l3_fills_noncritical += 1;
        }
        self.policy.on_fill(line, predicted, bank);
        self.policy.on_l3_write(bank);
        if let Some(victim) = out.victim {
            self.evict_l3_victim(victim.line, victim.dirty, bank);
        }
    }

    /// Charge one L3 write of `line` to `(bank, slot)`: the per-slot line
    /// wear always, plus the compressed-array accounting when modelled.
    /// Matches `MemoryHierarchy::charge_l3_write` (record_subblock_write
    /// bumps the line counter exactly once per write too).
    fn charge_write(&mut self, bank: usize, slot: usize, line: u64, is_fill: bool) {
        self.wear[bank][slot] += 1;
        if let Some(c2) = self.compress.as_mut() {
            c2.charge(bank, slot, line, is_fill);
        }
    }

    fn evict_l3_victim(&mut self, victim: u64, l3_dirty: bool, bank: usize) {
        let mut dirty = l3_dirty;
        for holder in self.dir_back_invalidate(victim) {
            let d1 = self.l1[holder].invalidate(victim).unwrap_or(false);
            let d2 = self.l2[holder].invalidate(victim).unwrap_or(false);
            dirty |= d1 || d2;
            self.stats.back_invalidations += 1;
        }
        if dirty {
            self.stats.l3_writebacks_to_dram += 1;
        }
        self.policy.on_evict(victim, bank);
    }

    fn fill_l2_l1(
        &mut self,
        core: usize,
        line: u64,
        is_store: bool,
        events: &mut Vec<GoldenEvent>,
    ) {
        if !self.l2[core].contains(line) {
            let out = self.l2[core].fill(line, false);
            if let Some(ev) = out.victim {
                let l1_dirty = self.l1[core].invalidate(ev.line).unwrap_or(false);
                self.dir_evict(ev.line, core);
                if ev.dirty || l1_dirty {
                    self.writeback_to_l3(core, ev.line, events);
                }
            }
        }
        if self.l1[core].probe(line).is_some() {
            self.l1[core].access(line, is_store);
        } else {
            let out = self.l1[core].fill(line, is_store);
            if let Some(ev) = out.victim {
                if ev.dirty {
                    self.l2[core].mark_dirty(ev.line);
                }
            }
        }
    }

    fn writeback_to_l3(&mut self, core: usize, line: u64, events: &mut Vec<GoldenEvent>) {
        let bank = self.policy.lookup_bank(line);
        self.per_core[core].l2_writebacks += 1;
        events.push(GoldenEvent {
            kind: GoldenEventKind::Writeback,
            core,
            bank,
            line,
        });
        match self.l3[bank].probe(line) {
            Some((set, way)) => {
                self.l3[bank].mark_dirty(line);
                let slot = self.l3[bank].slot_index(set, way);
                self.charge_write(bank, slot, line, false);
            }
            None => {
                // Inclusion violation — only reachable when the real
                // hierarchy would hit its own "writeback missed inclusive
                // L3" assertion (rotation is disabled here). Mirror the
                // recovery path so release builds diverge identically.
                debug_assert!(false, "golden: writeback {line:#x} missed inclusive L3");
                let out = self.l3[bank].fill(line, true);
                let slot = self.l3[bank].slot_index(out.set, out.way);
                self.charge_write(bank, slot, line, true);
                if let Some(ev) = out.victim {
                    self.evict_l3_victim(ev.line, ev.dirty, bank);
                }
            }
        }
        self.stats.l3_writes += 1;
        // Block-criticality tracking is disabled: the real hierarchy does
        // not bump l3_writes_noncritical on the writeback path.
        self.policy.on_l3_write(bank);
    }

    // --- coherence directory (mirrors cmp_sim::coherence::Directory) ---

    fn dir_read(&mut self, line: u64, core: usize) {
        let bit = 1u32 << core;
        match self.dir.get_mut(&line) {
            None => {
                self.dir.insert(
                    line,
                    DirEntry {
                        sharers: bit,
                        exclusive: true,
                    },
                );
                self.dir_stats.grants_exclusive += 1;
            }
            Some(e) => {
                if e.sharers == bit {
                    return; // sole owner re-reads, state kept
                }
                e.sharers |= bit;
                e.exclusive = false;
                self.dir_stats.grants_shared += 1;
            }
        }
    }

    fn dir_write(&mut self, line: u64, core: usize) -> Vec<usize> {
        let bit = 1u32 << core;
        let e = self.dir.entry(line).or_default();
        let victims = e.sharers & !bit;
        e.sharers = bit;
        e.exclusive = true;
        self.dir_stats.upgrades_modified += 1;
        self.dir_stats.invalidations_sent += victims.count_ones() as u64;
        (0..32).filter(|c| victims & (1 << c) != 0).collect()
    }

    fn dir_evict(&mut self, line: u64, core: usize) {
        let bit = 1u32 << core;
        if let Some(e) = self.dir.get_mut(&line) {
            e.sharers &= !bit;
            if e.sharers == 0 {
                self.dir.remove(&line);
            } else if e.sharers.count_ones() == 1 {
                e.exclusive = false;
            }
        }
    }

    fn dir_back_invalidate(&mut self, line: u64) -> Vec<usize> {
        match self.dir.remove(&line) {
            None => Vec::new(),
            Some(e) => {
                let holders: Vec<usize> = (0..32).filter(|c| e.sharers & (1 << c) != 0).collect();
                self.dir_stats.back_invalidations += holders.len() as u64;
                holders
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GoldenScheme;
    use cmp_sim::types::phys_addr;

    fn tiny() -> SystemConfig {
        let mut cfg = SystemConfig::mesh(2, 2);
        cfg.prefetch.enabled = false;
        cfg
    }

    #[test]
    fn first_touch_fills_then_hits_silently() {
        let cfg = tiny();
        let mut g = GoldenSystem::new(&cfg, GoldenPolicy::new(GoldenScheme::SNuca, 2, 2));
        let phys = phys_addr(0, 0x1000);
        let ev = g.step(0, phys, false, false);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].kind, GoldenEventKind::Fill);
        assert_eq!(ev[0].bank, g.policy.snuca_bank(line_of(phys)));
        assert!(g.step(0, phys, false, false).is_empty(), "L1 hit is silent");
        assert_eq!(g.per_core[0].l3_misses, 1);
        assert_eq!(g.stats.l3_fills, 1);
        assert_eq!(g.bank_totals().iter().sum::<u64>(), 1);
    }
}
