//! Seeded workload traces and the `renuca-trace-v1` compact text format.
//!
//! A trace is a sequence of [`TraceOp`]s — one memory access each — that
//! the differential runner replays through both the real hierarchy and the
//! golden model. Every op packs into one `u64`, so shrunk counterexamples
//! serialize to one hex word per line under a single header line:
//!
//! ```text
//! renuca-trace-v1 scheme=Re-NUCA cols=2 rows=2 seed=42
//! 000000050c0e4a40
//! ...
//! ```
//!
//! Generation is fully determined by a [`TraceSpec`] and its seed, in
//! `sim-rng` style: the master seed is expanded with `splitmix64` into
//! per-concern sub-streams so changing one knob does not reshuffle the
//! others.

use sim_rng::{splitmix64, SimRng};

/// Bit layout of a packed op (low to high): 32 bits physical address,
/// 16 bits PC, 5 bits core, 1 bit store, 1 bit ROB-blocked.
const PC_SHIFT: u32 = 32;
const CORE_SHIFT: u32 = 48;
const STORE_BIT: u32 = 53;
const BLOCKED_BIT: u32 = 54;

/// One replayable memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    /// Issuing core (0..32).
    pub core: usize,
    /// Physical byte address (fits in 32 bits for ≤ 16-core machines).
    pub phys: u64,
    /// Program counter of the triggering instruction (≥ 1; 0 is reserved
    /// for the hierarchy's internal writeback metadata).
    pub pc: u32,
    /// Store (write-allocate) instead of load.
    pub is_store: bool,
    /// Whether this dynamic load blocked the ROB head (drives CPT
    /// training; ignored for stores).
    pub blocked: bool,
}

impl TraceOp {
    /// Pack into one `u64`.
    pub fn pack(self) -> u64 {
        debug_assert!(self.phys < (1u64 << 32));
        debug_assert!(self.pc >= 1 && self.pc < (1 << 16));
        debug_assert!(self.core < 32);
        self.phys
            | ((self.pc as u64) << PC_SHIFT)
            | ((self.core as u64) << CORE_SHIFT)
            | ((self.is_store as u64) << STORE_BIT)
            | ((self.blocked as u64) << BLOCKED_BIT)
    }

    /// Unpack from a `u64`.
    pub fn unpack(word: u64) -> Self {
        TraceOp {
            core: ((word >> CORE_SHIFT) & 0x1f) as usize,
            phys: word & 0xffff_ffff,
            pc: ((word >> PC_SHIFT) & 0xffff) as u32,
            is_store: word & (1 << STORE_BIT) != 0,
            blocked: word & (1 << BLOCKED_BIT) != 0,
        }
    }
}

/// Knobs of the seeded trace generator.
#[derive(Clone, Copy, Debug)]
pub struct TraceSpec {
    /// Master seed — the only source of randomness.
    pub seed: u64,
    /// Mesh columns (cores = banks = cols × rows; pow2 and non-pow2 both
    /// supported).
    pub cols: usize,
    /// Mesh rows.
    pub rows: usize,
    /// Number of ops to generate.
    pub ops: usize,
    /// Pages each core's working set spans (footprint = pages × 4 KB).
    pub footprint_pages: u64,
    /// Fraction of ops that are stores.
    pub write_ratio: f64,
    /// Fraction of load PCs that block the ROB frequently (the critical
    /// PCs); the rest block rarely. Skews the CPT's verdict mix.
    pub criticality_skew: f64,
    /// Probability an access targets another core's address region
    /// (exercises the coherence directory and cross-core MBV paths).
    pub sharing: f64,
    /// Distinct load/store PCs per core.
    pub pcs_per_core: u32,
}

impl TraceSpec {
    /// A balanced default spec for a `cols × rows` machine.
    pub fn new(seed: u64, cols: usize, rows: usize, ops: usize) -> Self {
        TraceSpec {
            seed,
            cols,
            rows,
            ops,
            footprint_pages: 8,
            write_ratio: 0.3,
            criticality_skew: 0.2,
            sharing: 0.1,
            pcs_per_core: 24,
        }
    }
}

/// Generate the op sequence of `spec`. Deterministic in `spec` alone.
pub fn generate(spec: &TraceSpec) -> Vec<TraceOp> {
    let n_cores = spec.cols * spec.rows;
    assert!(
        n_cores > 0 && n_cores <= 16,
        "packed ops carry 32-bit addresses"
    );
    assert!(spec.pcs_per_core >= 1);
    let mut master = spec.seed;
    let mut rng = SimRng::seed_from_u64(splitmix64(&mut master));
    let mut pc_rng = SimRng::seed_from_u64(splitmix64(&mut master));

    // Per-core PC sets with a fixed critical/non-critical split. PCs are
    // globally unique (core-offset) and never 0.
    let n_critical = ((spec.pcs_per_core as f64) * spec.criticality_skew).round() as u32;
    let pc_base = |core: usize| 1 + (core as u32) * spec.pcs_per_core;

    let mut ops = Vec::with_capacity(spec.ops);
    for _ in 0..spec.ops {
        let core = rng.gen_range_usize(0..n_cores);
        // Pick the address region: usually the core's own, sometimes a
        // neighbour's (sharing).
        let region = if spec.sharing > 0.0 && rng.gen_bool(spec.sharing) {
            rng.gen_range_usize(0..n_cores)
        } else {
            core
        };
        // Skewed page choice: square the uniform draw so low-numbered pages
        // are hot — realistic reuse, and it keeps the LRU stacks busy.
        let u = rng.gen_f64();
        let page = ((u * u) * spec.footprint_pages as f64) as u64;
        let page = page.min(spec.footprint_pages - 1);
        let line_in_page = rng.gen_bounded(64);
        let vaddr = page * 4096 + line_in_page * 64;
        let phys = cmp_sim::types::phys_addr(region, vaddr);

        let is_store = rng.gen_bool(spec.write_ratio);
        let pc_idx = pc_rng.gen_bounded(spec.pcs_per_core as u64) as u32;
        let pc = pc_base(core) + pc_idx;
        // Critical PCs block ~80% of the time, the rest ~1% — well clear of
        // the 3% CPT threshold on both sides.
        let block_p = if pc_idx < n_critical { 0.8 } else { 0.01 };
        let blocked = !is_store && pc_rng.gen_bool(block_p);

        ops.push(TraceOp {
            core,
            phys,
            pc,
            is_store,
            blocked,
        });
    }
    ops
}

/// Serialize a trace: header + one 16-digit hex word per op.
pub fn trace_to_text(
    scheme_name: &str,
    cols: usize,
    rows: usize,
    seed: u64,
    ops: &[TraceOp],
) -> String {
    let mut out =
        format!("renuca-trace-v1 scheme={scheme_name} cols={cols} rows={rows} seed={seed}\n");
    for op in ops {
        out.push_str(&format!("{:016x}\n", op.pack()));
    }
    out
}

/// Parse a `renuca-trace-v1` text back into `(scheme, cols, rows, seed,
/// ops)`. Returns `None` on any malformed line.
pub fn parse_trace(text: &str) -> Option<(String, usize, usize, u64, Vec<TraceOp>)> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut parts = header.split_whitespace();
    if parts.next()? != "renuca-trace-v1" {
        return None;
    }
    let mut scheme = None;
    let mut cols = None;
    let mut rows = None;
    let mut seed = None;
    for kv in parts {
        let (k, v) = kv.split_once('=')?;
        match k {
            "scheme" => scheme = Some(v.to_owned()),
            "cols" => cols = v.parse().ok(),
            "rows" => rows = v.parse().ok(),
            "seed" => seed = v.parse().ok(),
            _ => return None,
        }
    }
    let mut ops = Vec::new();
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        ops.push(TraceOp::unpack(u64::from_str_radix(line, 16).ok()?));
    }
    Some((scheme?, cols?, rows?, seed?, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        let op = TraceOp {
            core: 13,
            phys: 0xdead_bee8,
            pc: 0x1234,
            is_store: true,
            blocked: false,
        };
        assert_eq!(TraceOp::unpack(op.pack()), op);
    }

    #[test]
    fn generation_is_deterministic_and_in_bounds() {
        let spec = TraceSpec::new(7, 3, 2, 500);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        for op in &a {
            assert!(op.core < 6);
            assert!(op.phys < 1 << 32);
            assert!(op.pc >= 1);
            assert!(!op.blocked || !op.is_store);
        }
        // A different seed must produce a different stream.
        let c = generate(&TraceSpec::new(8, 3, 2, 500));
        assert_ne!(a, c);
    }

    #[test]
    fn text_format_roundtrips() {
        let spec = TraceSpec::new(42, 2, 2, 50);
        let ops = generate(&spec);
        let text = trace_to_text("Re-NUCA", 2, 2, 42, &ops);
        let (scheme, cols, rows, seed, parsed) = parse_trace(&text).unwrap();
        assert_eq!(scheme, "Re-NUCA");
        assert_eq!((cols, rows, seed), (2, 2, 42));
        assert_eq!(parsed, ops);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(parse_trace("bogus-header\n").is_none());
        assert!(parse_trace("renuca-trace-v1 scheme=S-NUCA cols=2 rows=2 seed=1\nzz\n").is_none());
        assert!(parse_trace("renuca-trace-v1 cols=2 rows=2 seed=1\n").is_none());
    }
}
