//! Naive re-implementation of the L2C2 compression content model.
//!
//! The golden twin must not share code with `crates/compress` (the
//! comparison would be vacuous), so the size-class hash, the rotating
//! sub-block mask and the per-cell wear bookkeeping are re-derived here
//! from the documented semantics: class 1 with probability 1/2, class 2
//! with 1/4, class 4 with 1/4, drawn from a Murmur3-finalized hash of
//! `(seed, line, version)`; a class-`c` write at version `v` programs `c`
//! consecutive sub-blocks starting at `v % sub_blocks`. The differential
//! harness pins `golden_size_class == compress::size_class` over a sweep,
//! exactly like the `GOLDEN_WEC_THRESHOLD` constant pinning.

/// Size class (1, 2 or 4 sub-blocks) of writing `line` at write `version`,
/// before clamping to the line's sub-block count. Twin of
/// `compress::size_class`, re-implemented independently.
pub fn golden_size_class(seed: u64, line: u64, version: u32) -> u8 {
    // Murmur3 fmix64, written out inline.
    let mut h = seed
        ^ line.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (u64::from(version) << 1 | 1).wrapping_mul(0xd1b5_4a32_d192_ed03);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    match h & 3 {
        0 | 1 => 1,
        2 => 2,
        _ => 4,
    }
}

/// Sub-block write mask of a class-`class` write at `version`: `class`
/// consecutive sub-blocks (clamped) starting at `version % sub_blocks`,
/// wrapping. Twin of `compress::subblock_mask`.
pub fn golden_subblock_mask(sub_blocks: usize, class: u8, version: u32) -> u64 {
    assert!(sub_blocks >= 1 && sub_blocks <= 64, "sub_blocks in 1..=64");
    let c = (class as usize).min(sub_blocks);
    let start = version as usize % sub_blocks;
    let mut mask = 0u64;
    for k in 0..c {
        mask |= 1 << ((start + k) % sub_blocks);
    }
    mask
}

/// The golden compressed-data-array state: per-slot allocation class and
/// write version, per-cell (sub-block) wear and the per-bank expansion /
/// class-histogram counters the harness compares against
/// `BankCompressStats` and `WearTracker::cell_writes`.
#[derive(Clone, Debug)]
pub struct GoldenCompress {
    /// Sub-blocks per line.
    pub sub_blocks: usize,
    /// Content-model seed.
    pub seed: u64,
    /// Allocated size class per `[bank][slot]`.
    pub class: Vec<Vec<u8>>,
    /// Write version per `[bank][slot]` (resets to 0 on fill).
    pub version: Vec<Vec<u32>>,
    /// Per-cell wear, `[bank][slot * sub_blocks + k]`.
    pub cell_wear: Vec<Vec<u64>>,
    /// Expansion re-fills per bank.
    pub expansions: Vec<u64>,
    /// Class-write histogram per bank, indexed by `log2(class)`.
    pub class_writes: Vec<[u64; 3]>,
}

impl GoldenCompress {
    /// Zeroed compression state for `n_banks × slots` lines of
    /// `sub_blocks` sub-blocks each.
    pub fn new(n_banks: usize, slots: usize, sub_blocks: usize, seed: u64) -> Self {
        GoldenCompress {
            sub_blocks,
            seed,
            class: vec![vec![0; slots]; n_banks],
            version: vec![vec![0; slots]; n_banks],
            cell_wear: vec![vec![0; slots * sub_blocks]; n_banks],
            expansions: vec![0; n_banks],
            class_writes: vec![[0; 3]; n_banks],
        }
    }

    /// Account one L3 write of `line` into `(bank, slot)`. Fills reset the
    /// version and set the allocation; writebacks expand the allocation
    /// when (and only when) the new class strictly exceeds it — the golden
    /// model is always the unbugged reference.
    pub fn charge(&mut self, bank: usize, slot: usize, line: u64, is_fill: bool) {
        if is_fill {
            self.version[bank][slot] = 0;
        }
        let v = self.version[bank][slot];
        let c = golden_size_class(self.seed, line, v).min(self.sub_blocks as u8);
        let mask = golden_subblock_mask(self.sub_blocks, c, v);
        for k in 0..self.sub_blocks {
            if mask >> k & 1 == 1 {
                self.cell_wear[bank][slot * self.sub_blocks + k] += 1;
            }
        }
        self.class_writes[bank][c.trailing_zeros() as usize] += 1;
        self.version[bank][slot] = v + 1;
        if is_fill {
            self.class[bank][slot] = c;
        } else if c > self.class[bank][slot] {
            self.class[bank][slot] = c;
            self.expansions[bank] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_classes_hit_the_pinned_distribution() {
        let n = 100_000u64;
        let mut counts = [0u64; 5];
        for i in 0..n {
            counts[golden_size_class(0xC0DEC, i, (i % 5) as u32) as usize] += 1;
        }
        assert_eq!(counts[0] + counts[3], 0);
        let p1 = counts[1] as f64 / n as f64;
        assert!((p1 - 0.5).abs() < 0.02, "p1 = {p1}");
    }

    #[test]
    fn masks_rotate_with_version() {
        assert_eq!(golden_subblock_mask(4, 2, 0), 0b0011);
        assert_eq!(golden_subblock_mask(4, 2, 3), 0b1001);
        assert_eq!(golden_subblock_mask(2, 4, 0), 0b11, "class clamps");
    }

    #[test]
    fn fills_reset_and_writebacks_expand_strictly() {
        let mut gc = GoldenCompress::new(1, 4, 4, 7);
        // Find a line whose fill class is 1 and whose next write is class 4
        // so one writeback provably expands.
        let line = (0..10_000u64)
            .find(|&l| golden_size_class(7, l, 0) == 1 && golden_size_class(7, l, 1) == 4)
            .expect("such a line exists in the first 10k");
        gc.charge(0, 2, line, true);
        assert_eq!((gc.class[0][2], gc.version[0][2]), (1, 1));
        assert_eq!(gc.expansions[0], 0);
        gc.charge(0, 2, line, false);
        assert_eq!(gc.class[0][2], 4);
        assert_eq!(gc.expansions[0], 1);
        // Cell wear: 1 sub-block + 4 sub-blocks = 5 cell writes total.
        assert_eq!(gc.cell_wear[0].iter().sum::<u64>(), 5);
        assert_eq!(gc.class_writes[0], [1, 0, 1]);
    }
}
