//! A naive re-implementation of the Criticality Prediction Table.
//!
//! Mirrors the observable semantics of `renuca_core::Cpt` (paper §IV.B):
//! a direct-mapped, PC-tagged table of `(numLoadsCount, robBlockCount)`
//! pairs; a load is critical when `robBlockCount ≥ x% × numLoadsCount`.
//! The index hash (`pc * 0x9E37_79B9 >> 16`, masked) is part of the spec —
//! conflicts and replacements are observable through predictions — so the
//! golden model uses the same function over a `Vec<Option<Entry>>`.

/// One table entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    pc: u32,
    num_loads: u32,
    rob_blocks: u32,
}

/// The golden CPT.
#[derive(Clone, Debug)]
pub struct GoldenCpt {
    table: Vec<Option<Entry>>,
    threshold_pct: f64,
    aging_cap: u32,
    /// Issue-time probes that found their PC.
    pub hits: u64,
    /// Issue-time probes that missed.
    pub misses: u64,
    /// Entries inserted at commit.
    pub insertions: u64,
    /// Entries displaced by a conflicting PC.
    pub replacements: u64,
    /// Loads predicted critical.
    pub predicted_critical: u64,
    /// Loads predicted non-critical.
    pub predicted_noncritical: u64,
}

impl GoldenCpt {
    /// Build a golden CPT with `entries` slots (power of two) and threshold
    /// `x` percent.
    pub fn new(entries: usize, threshold_pct: f64, aging_cap: u32) -> Self {
        assert!(entries.is_power_of_two());
        assert!(threshold_pct > 0.0 && threshold_pct <= 100.0);
        GoldenCpt {
            table: vec![None; entries],
            threshold_pct,
            aging_cap,
            hits: 0,
            misses: 0,
            insertions: 0,
            replacements: 0,
            predicted_critical: 0,
            predicted_noncritical: 0,
        }
    }

    fn index(&self, pc: u32) -> usize {
        (pc.wrapping_mul(0x9E37_79B9) >> 16) as usize & (self.table.len() - 1)
    }

    fn is_critical(e: &Entry, threshold_pct: f64) -> bool {
        e.rob_blocks as f64 * 100.0 >= threshold_pct * e.num_loads as f64
    }

    /// Issue-time prediction: classify against past history, then count
    /// this issue and apply aging.
    pub fn predict(&mut self, pc: u32) -> bool {
        let idx = self.index(pc);
        let threshold = self.threshold_pct;
        let cap = self.aging_cap;
        let critical = match &mut self.table[idx] {
            Some(e) if e.pc == pc => {
                self.hits += 1;
                let verdict = Self::is_critical(e, threshold);
                e.num_loads = e.num_loads.saturating_add(1);
                if e.num_loads >= cap {
                    e.num_loads >>= 1;
                    e.rob_blocks >>= 1;
                }
                verdict
            }
            _ => {
                self.misses += 1;
                false
            }
        };
        if critical {
            self.predicted_critical += 1;
        } else {
            self.predicted_noncritical += 1;
        }
        critical
    }

    /// The dynamic load at `pc` blocked the ROB head.
    pub fn on_rob_block(&mut self, pc: u32) {
        let idx = self.index(pc);
        if let Some(e) = &mut self.table[idx] {
            if e.pc == pc {
                e.rob_blocks = e.rob_blocks.saturating_add(1);
            }
        }
    }

    /// The load at `pc` committed; inserts a new entry on a tag mismatch.
    pub fn on_load_commit(&mut self, pc: u32, blocked: bool) {
        let idx = self.index(pc);
        match &self.table[idx] {
            Some(e) if e.pc == pc => return,
            Some(_) => self.replacements += 1,
            None => {}
        }
        self.insertions += 1;
        self.table[idx] = Some(Entry {
            pc,
            num_loads: 1,
            rob_blocks: blocked as u32,
        });
    }

    /// Read-only classification (no counting).
    pub fn classify(&self, pc: u32) -> Option<bool> {
        let e = self.table[self.index(pc)].as_ref()?;
        (e.pc == pc).then(|| Self::is_critical(e, self.threshold_pct))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_lifecycle() {
        let mut c = GoldenCpt::new(1024, 3.0, 1 << 20);
        assert!(!c.predict(7)); // first touch: non-critical, miss
        c.on_load_commit(7, true); // inserted (1, 1)
        assert!(c.predict(7)); // 1 >= 3% of 1
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.insertions, 1);
    }
}
