//! Naive re-implementations of the evaluated placement policies.
//!
//! Mirrors the observable behaviour of `renuca_core::mapping` with plain
//! state: the Naive oracle's directory is a `BTreeMap`, Re-NUCA's Mapping
//! Bit Vectors are a total `BTreeMap<(core, page), u64>` (the enhanced TLB
//! plus its backing store behave as a total map — entries evicted from the
//! TLB persist in the page table, and absent pages read as 0), and the
//! R-NUCA cluster is recomputed from the mesh geometry on every call. The
//! wear-management competitors follow the same discipline: WEC's and
//! Coloring's residency directories are `BTreeMap`s, WEC's coldest-bank
//! choice is a full scan per fill (no cached argmin), and Coloring's
//! rotation is re-derived from the write total on every call.

use std::collections::BTreeMap;

use cmp_sim::types::{line_index_in_page, owner_of_line, page_of_line};

/// WEC's hot-bank redirection threshold. Golden re-derives every behaviour
/// from documented semantics, constants included — this must stay equal to
/// `renuca_core::WEC_THRESHOLD` (the differential harness cross-checks).
pub const GOLDEN_WEC_THRESHOLD: u64 = 8;

/// Coloring's writes-per-epoch; twin of `renuca_core::COLORING_EPOCH`.
pub const GOLDEN_COLORING_EPOCH: u64 = 64;

/// The placement schemes, named as in `renuca_core::Scheme`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GoldenScheme {
    /// Static NUCA: bank = low line bits.
    SNuca,
    /// Reactive NUCA: rotational interleaving within a 2×2 cluster.
    RNuca,
    /// Private: each core's lines in its own bank.
    Private,
    /// The least-written-bank oracle with a global directory.
    Naive,
    /// The paper's hybrid: criticality-gated R-NUCA/S-NUCA with MBVs.
    ReNuca,
    /// WEC: hot S-NUCA homes redirect fills to the coldest bank.
    Wec,
    /// Coloring: the bank map rotates one bank per write epoch.
    Coloring,
    /// MAC: S-NUCA placement over write-aware bank replacement.
    Mac,
    /// Re-NUCA over a compressed (L2C2-style) data array: placement is
    /// identical to Re-NUCA; the hierarchy additionally tracks sub-block
    /// wear, allocation classes and expansions (see `crate::compress`).
    ReNucaC2,
}

impl GoldenScheme {
    /// All nine schemes, in `renuca_core::Scheme::ALL` order.
    pub const ALL: [GoldenScheme; 9] = [
        GoldenScheme::Naive,
        GoldenScheme::SNuca,
        GoldenScheme::ReNuca,
        GoldenScheme::RNuca,
        GoldenScheme::Private,
        GoldenScheme::Wec,
        GoldenScheme::Coloring,
        GoldenScheme::Mac,
        GoldenScheme::ReNucaC2,
    ];

    /// Display name matching `renuca_core::Scheme::name`.
    pub fn name(self) -> &'static str {
        match self {
            GoldenScheme::SNuca => "S-NUCA",
            GoldenScheme::RNuca => "R-NUCA",
            GoldenScheme::Private => "Private",
            GoldenScheme::Naive => "Naive",
            GoldenScheme::ReNuca => "Re-NUCA",
            GoldenScheme::Wec => "WEC",
            GoldenScheme::Coloring => "Coloring",
            GoldenScheme::Mac => "MAC",
            GoldenScheme::ReNucaC2 => "Re-NUCA-C2",
        }
    }

    /// Parse a display name back into a scheme.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Whether this scheme's L3 banks run write-aware (clean-first) victim
    /// selection instead of true LRU — the golden hierarchy builds its bank
    /// arrays accordingly.
    pub fn write_aware_replacement(self) -> bool {
        self == GoldenScheme::Mac
    }
}

/// The owning core of a line, clamped into the machine: mask for pow2 core
/// counts, modulo otherwise (mirrors `renuca_core::mapping::owner`).
fn owner(line: u64, n_cores: usize) -> usize {
    let raw = owner_of_line(line);
    if n_cores.is_power_of_two() {
        raw & (n_cores - 1)
    } else {
        raw % n_cores
    }
}

/// Re-NUCA placement counters (compared against `ReNucaStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GoldenReNucaStats {
    /// Fills placed with the R-NUCA mapping.
    pub critical_fills: u64,
    /// Fills placed with the S-NUCA mapping.
    pub noncritical_fills: u64,
    /// Lookups routed by an MBV bit of 1.
    pub lookups_rnuca: u64,
    /// Lookups routed by an MBV bit of 0.
    pub lookups_snuca: u64,
}

/// One naive placement policy instance.
#[derive(Clone, Debug)]
pub struct GoldenPolicy {
    scheme: GoldenScheme,
    cols: usize,
    rows: usize,
    n_banks: usize,
    /// Naive: per-bank write counters (the oracle's leveling state).
    pub naive_writes: Vec<u64>,
    /// Naive: line → bank directory.
    pub naive_directory: BTreeMap<u64, usize>,
    /// Re-NUCA: (core, page) → 64-bit Mapping Bit Vector. Zero vectors are
    /// pruned so the map only holds pages with at least one R-NUCA line.
    pub mbv: BTreeMap<(usize, u64), u64>,
    /// Re-NUCA placement counters.
    pub renuca_stats: GoldenReNucaStats,
    /// WEC: per-bank write counters.
    pub wec_writes: Vec<u64>,
    /// WEC: line → bank directory of *redirected* lines only.
    pub wec_directory: BTreeMap<u64, usize>,
    /// Coloring: total L3 writes (the epoch clock).
    pub coloring_writes: u64,
    /// Coloring: line → bank directory of every resident line.
    pub coloring_directory: BTreeMap<u64, usize>,
}

impl GoldenPolicy {
    /// Build the naive model of `scheme` on a `cols × rows` mesh (one core
    /// and one bank per tile, as everywhere in this codebase).
    pub fn new(scheme: GoldenScheme, cols: usize, rows: usize) -> Self {
        let n_banks = cols * rows;
        assert!(n_banks > 0);
        GoldenPolicy {
            scheme,
            cols,
            rows,
            n_banks,
            naive_writes: vec![0; n_banks],
            naive_directory: BTreeMap::new(),
            mbv: BTreeMap::new(),
            renuca_stats: GoldenReNucaStats::default(),
            wec_writes: vec![0; n_banks],
            wec_directory: BTreeMap::new(),
            coloring_writes: 0,
            coloring_directory: BTreeMap::new(),
        }
    }

    /// The scheme this policy models.
    pub fn scheme(&self) -> GoldenScheme {
        self.scheme
    }

    /// S-NUCA striping: mask for pow2 bank counts, modulo otherwise.
    pub fn snuca_bank(&self, line: u64) -> usize {
        if self.n_banks.is_power_of_two() {
            (line & (self.n_banks as u64 - 1)) as usize
        } else {
            (line % self.n_banks as u64) as usize
        }
    }

    /// R-NUCA rotational interleaving: the cluster is the 2×2 window
    /// containing the core, clamped at mesh edges; the bank is
    /// `cluster[(line + rid + 1) mod |cluster|]` with the rotational id
    /// being the core's position within its window. Recomputed naively on
    /// every call.
    pub fn rnuca_bank(&self, core: usize, line: u64) -> usize {
        let (cols, rows) = (self.cols, self.rows);
        let x = core % cols;
        let y = core / cols;
        let wx = x.min(cols.saturating_sub(2));
        let wy = y.min(rows.saturating_sub(2));
        let xs: Vec<usize> = if cols >= 2 { vec![wx, wx + 1] } else { vec![0] };
        let ys: Vec<usize> = if rows >= 2 { vec![wy, wy + 1] } else { vec![0] };
        let mut cluster = Vec::new();
        for &cy in &ys {
            for &cx in &xs {
                cluster.push(cy * cols + cx);
            }
        }
        let rid = ((x - wx) + 2 * (y - wy)) as u64;
        let n = cluster.len() as u64; // 1, 2 or 4 — always a power of two
        cluster[((line + rid + 1) & (n - 1)) as usize]
    }

    fn mbv_bit(&self, core: usize, page: u64, bit: u32) -> bool {
        self.mbv.get(&(core, page)).copied().unwrap_or(0) & (1u64 << bit) != 0
    }

    fn set_mbv_bit(&mut self, core: usize, page: u64, bit: u32, value: bool) {
        let entry = self.mbv.entry((core, page)).or_insert(0);
        if value {
            *entry |= 1u64 << bit;
        } else {
            *entry &= !(1u64 << bit);
        }
        if *entry == 0 {
            self.mbv.remove(&(core, page));
        }
    }

    /// The final MBV word of a (core, page), 0 when absent — comparable to
    /// `EnhancedTlb::mbv`.
    pub fn mbv_word(&self, core: usize, page: u64) -> u64 {
        self.mbv.get(&(core, page)).copied().unwrap_or(0)
    }

    /// First lowest-write bank, scanning in order (naive full scan; the
    /// real WEC/Naive policies cache this argmin).
    fn coldest_bank(writes: &[u64]) -> usize {
        let mut best = 0;
        let mut best_w = writes[0];
        for (b, &w) in writes.iter().enumerate().skip(1) {
            if w < best_w {
                best = b;
                best_w = w;
            }
        }
        best
    }

    /// Coloring's current bank map: the S-NUCA home shifted by one bank per
    /// completed write epoch, re-derived from the write total on each call.
    pub fn coloring_bank(&self, line: u64) -> usize {
        let shift = (self.coloring_writes / GOLDEN_COLORING_EPOCH) % self.n_banks as u64;
        (self.snuca_bank(line) + shift as usize) % self.n_banks
    }

    /// The bank to search for `line` (mirrors `LlcPlacement::lookup_bank`).
    pub fn lookup_bank(&mut self, line: u64) -> usize {
        match self.scheme {
            GoldenScheme::SNuca | GoldenScheme::Mac => self.snuca_bank(line),
            GoldenScheme::RNuca => self.rnuca_bank(owner(line, self.n_banks), line),
            GoldenScheme::Private => owner(line, self.n_banks),
            GoldenScheme::Naive => self
                .naive_directory
                .get(&line)
                .copied()
                .unwrap_or_else(|| self.snuca_bank(line)),
            GoldenScheme::Wec => self
                .wec_directory
                .get(&line)
                .copied()
                .unwrap_or_else(|| self.snuca_bank(line)),
            GoldenScheme::Coloring => self
                .coloring_directory
                .get(&line)
                .copied()
                .unwrap_or_else(|| self.coloring_bank(line)),
            GoldenScheme::ReNuca | GoldenScheme::ReNucaC2 => {
                let core = owner(line, self.n_banks);
                let page = page_of_line(line);
                let bit = line_index_in_page(line) as u32;
                if self.mbv_bit(core, page, bit) {
                    self.renuca_stats.lookups_rnuca += 1;
                    self.rnuca_bank(core, line)
                } else {
                    self.renuca_stats.lookups_snuca += 1;
                    self.snuca_bank(line)
                }
            }
        }
    }

    /// The bank a new fill of `line` goes to (mirrors `fill_bank`).
    pub fn fill_bank(&mut self, line: u64, predicted_critical: bool) -> usize {
        match self.scheme {
            GoldenScheme::SNuca | GoldenScheme::Mac => self.snuca_bank(line),
            GoldenScheme::Wec => {
                let home = self.snuca_bank(line);
                let coldest = Self::coldest_bank(&self.wec_writes);
                if self.wec_writes[home] >= self.wec_writes[coldest] + GOLDEN_WEC_THRESHOLD {
                    coldest
                } else {
                    home
                }
            }
            GoldenScheme::Coloring => self.coloring_bank(line),
            GoldenScheme::RNuca => self.rnuca_bank(owner(line, self.n_banks), line),
            GoldenScheme::Private => owner(line, self.n_banks),
            GoldenScheme::Naive => {
                // First strict minimum, scanning banks in order.
                let mut best = 0;
                let mut best_w = self.naive_writes[0];
                for (b, &w) in self.naive_writes.iter().enumerate().skip(1) {
                    if w < best_w {
                        best = b;
                        best_w = w;
                    }
                }
                best
            }
            GoldenScheme::ReNuca | GoldenScheme::ReNucaC2 => {
                let core = owner(line, self.n_banks);
                if predicted_critical {
                    self.rnuca_bank(core, line)
                } else {
                    self.snuca_bank(line)
                }
            }
        }
    }

    /// A fill of `line` landed in `bank` (mirrors `on_fill`).
    pub fn on_fill(&mut self, line: u64, predicted_critical: bool, bank: usize) {
        match self.scheme {
            GoldenScheme::Naive => {
                self.naive_directory.insert(line, bank);
            }
            GoldenScheme::Wec => {
                if bank != self.snuca_bank(line) {
                    self.wec_directory.insert(line, bank);
                }
            }
            GoldenScheme::Coloring => {
                self.coloring_directory.insert(line, bank);
            }
            GoldenScheme::ReNuca | GoldenScheme::ReNucaC2 => {
                let core = owner(line, self.n_banks);
                let page = page_of_line(line);
                let bit = line_index_in_page(line) as u32;
                if predicted_critical {
                    self.renuca_stats.critical_fills += 1;
                } else {
                    self.renuca_stats.noncritical_fills += 1;
                }
                self.set_mbv_bit(core, page, bit, predicted_critical);
            }
            _ => {}
        }
    }

    /// A write (fill or writeback) landed in `bank` (mirrors `on_l3_write`).
    pub fn on_l3_write(&mut self, bank: usize) {
        match self.scheme {
            GoldenScheme::Naive => self.naive_writes[bank] += 1,
            GoldenScheme::Wec => self.wec_writes[bank] += 1,
            GoldenScheme::Coloring => self.coloring_writes += 1,
            _ => {}
        }
    }

    /// `line` was evicted from `bank` (mirrors `on_evict`).
    pub fn on_evict(&mut self, line: u64, bank: usize) {
        match self.scheme {
            GoldenScheme::Naive => {
                let removed = self.naive_directory.remove(&line);
                debug_assert_eq!(removed, Some(bank), "golden directory out of sync");
            }
            GoldenScheme::Wec => match self.wec_directory.remove(&line) {
                Some(recorded) => {
                    debug_assert_eq!(recorded, bank, "golden WEC directory out of sync")
                }
                None => debug_assert_eq!(
                    bank,
                    self.snuca_bank(line),
                    "golden WEC: untracked eviction away from the home"
                ),
            },
            GoldenScheme::Coloring => {
                let removed = self.coloring_directory.remove(&line);
                debug_assert_eq!(removed, Some(bank), "golden Coloring directory out of sync");
            }
            GoldenScheme::ReNuca | GoldenScheme::ReNucaC2 => {
                let core = owner(line, self.n_banks);
                let page = page_of_line(line);
                let bit = line_index_in_page(line) as u32;
                self.set_mbv_bit(core, page, bit, false);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmp_sim::types::phys_addr;

    #[test]
    fn snuca_masks_pow2_and_mods_other_counts() {
        let p4 = GoldenPolicy::new(GoldenScheme::SNuca, 2, 2);
        assert_eq!(p4.snuca_bank(13), 13 & 3);
        let p6 = GoldenPolicy::new(GoldenScheme::SNuca, 3, 2);
        assert_eq!(p6.snuca_bank(13), 13 % 6);
    }

    #[test]
    fn rnuca_cluster_matches_reference_layout() {
        // 4×4 mesh: core 5 (tile 1,1) rotates over banks {5, 6, 9, 10}.
        let p = GoldenPolicy::new(GoldenScheme::RNuca, 4, 4);
        let mut seen = std::collections::BTreeSet::new();
        for line in 0..16u64 {
            seen.insert(p.rnuca_bank(5, line));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![5, 6, 9, 10]);
    }

    #[test]
    fn renuca_routes_by_mbv_residency() {
        let mut p = GoldenPolicy::new(GoldenScheme::ReNuca, 4, 4);
        let line = phys_addr(5, 0x7000) >> 6;
        let fill = p.fill_bank(line, true);
        p.on_fill(line, true, fill);
        assert_eq!(p.lookup_bank(line), fill);
        p.on_evict(line, fill);
        assert_eq!(p.lookup_bank(line), p.snuca_bank(line));
        assert!(p.mbv.is_empty(), "zero MBV words must be pruned");
    }

    #[test]
    fn wec_redirects_hot_homes_and_tracks_redirects() {
        let mut p = GoldenPolicy::new(GoldenScheme::Wec, 2, 2);
        assert_eq!(p.fill_bank(5, false), 1, "cold: stay at the S-NUCA home");
        for _ in 0..GOLDEN_WEC_THRESHOLD {
            p.on_l3_write(1);
        }
        let b = p.fill_bank(5, false);
        assert_eq!(b, 0, "hot home: redirect to the coldest bank");
        p.on_fill(5, false, b);
        assert_eq!(p.wec_directory.len(), 1);
        assert_eq!(p.lookup_bank(5), 0);
        p.on_evict(5, b);
        assert!(p.wec_directory.is_empty());
        assert_eq!(p.lookup_bank(5), 1);
    }

    #[test]
    fn coloring_rotates_and_pins_residents() {
        let mut p = GoldenPolicy::new(GoldenScheme::Coloring, 2, 2);
        let b = p.fill_bank(6, false);
        assert_eq!(b, 2);
        p.on_fill(6, false, b);
        for _ in 0..GOLDEN_COLORING_EPOCH {
            p.on_l3_write(0);
        }
        assert_eq!(p.fill_bank(6, false), 3, "map rotated one bank");
        assert_eq!(p.lookup_bank(6), 2, "resident line stays findable");
        p.on_evict(6, 2);
        assert_eq!(p.lookup_bank(6), 3);
    }

    #[test]
    fn mac_places_exactly_like_snuca() {
        let mut mac = GoldenPolicy::new(GoldenScheme::Mac, 4, 4);
        let mut snuca = GoldenPolicy::new(GoldenScheme::SNuca, 4, 4);
        for line in [0u64, 17, 12345, 1 << 30] {
            assert_eq!(mac.lookup_bank(line), snuca.lookup_bank(line));
            assert_eq!(mac.fill_bank(line, true), snuca.fill_bank(line, true));
        }
        assert!(GoldenScheme::Mac.write_aware_replacement());
        assert!(!GoldenScheme::SNuca.write_aware_replacement());
    }

    #[test]
    fn naive_levels_and_tracks_lines() {
        let mut p = GoldenPolicy::new(GoldenScheme::Naive, 2, 2);
        for line in 0..100u64 {
            let b = p.fill_bank(line, false);
            p.on_fill(line, false, b);
            p.on_l3_write(b);
        }
        let max = *p.naive_writes.iter().max().unwrap();
        let min = *p.naive_writes.iter().min().unwrap();
        assert!(max - min <= 1);
        assert_eq!(p.naive_directory.len(), 100);
    }
}
