//! A naive stamp-based set-associative cache.
//!
//! Re-implements the replacement contract of `cmp_sim::cache::SetAssocCache`
//! with per-set `Vec`s, modulo indexing and linear scans. The observable
//! semantics the differential harness relies on:
//!
//! * a logical clock advances on `access` and `fill` only — never on
//!   `probe`, `contains`, `invalidate` or `mark_dirty`;
//! * hits restamp the way with the current clock; `mark_dirty` restamps
//!   *without* advancing the clock (so a marked line can tie with the most
//!   recent access — victim choice then falls to way order);
//! * the fill victim is the first invalid way, else the way with the
//!   strictly smallest stamp scanning ways in order; under write-aware
//!   replacement (MAC banks) the stamp scan considers clean ways first and
//!   falls back to the all-ways scan only when every way is dirty;
//! * L3 banks fold the line address (`line ^ line>>11 ^ line>>22`) before
//!   set selection, private caches index with the raw line address;
//! * the physical slot of a (set, way) is `set * assoc + way` (set rotation
//!   is out of scope for the golden model — the harness runs with rotation
//!   disabled).

/// One cache way.
#[derive(Clone, Debug, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    line: u64,
    stamp: u64,
}

/// What a fill displaced.
#[derive(Clone, Copy, Debug)]
pub struct Victim {
    /// Line address of the displaced block.
    pub line: u64,
    /// Whether it was dirty.
    pub dirty: bool,
}

/// Result of a fill: where the block landed and what it displaced.
#[derive(Clone, Copy, Debug)]
pub struct FillSlot {
    /// Set index the block was placed in.
    pub set: usize,
    /// Way index within the set.
    pub way: usize,
    /// The valid block that was displaced, if any.
    pub victim: Option<Victim>,
}

/// The naive reference cache.
#[derive(Clone, Debug)]
pub struct GoldenCache {
    sets: Vec<Vec<Way>>,
    assoc: usize,
    hash_index: bool,
    /// MAC banks: prefer clean victims (twin of
    /// `cmp_sim::cache::ReplacementKind::WriteAware`).
    write_aware: bool,
    clock: u64,
}

impl GoldenCache {
    /// A cache with `lines / assoc` sets of `assoc` ways. `hash_index`
    /// selects the L3 XOR-fold set function.
    pub fn new(lines: usize, assoc: usize, hash_index: bool) -> Self {
        Self::with_write_aware(lines, assoc, hash_index, false)
    }

    /// A cache with an explicit victim-selection policy: `write_aware`
    /// makes fills prefer clean victims (MAC's replacement).
    pub fn with_write_aware(
        lines: usize,
        assoc: usize,
        hash_index: bool,
        write_aware: bool,
    ) -> Self {
        assert!(lines > 0 && assoc > 0 && lines % assoc == 0);
        let n_sets = lines / assoc;
        GoldenCache {
            sets: vec![vec![Way::default(); assoc]; n_sets],
            assoc,
            hash_index,
            write_aware,
            clock: 0,
        }
    }

    /// Total line capacity.
    pub fn lines(&self) -> usize {
        self.sets.len() * self.assoc
    }

    /// Valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|w| w.valid).count())
            .sum()
    }

    fn set_of(&self, line: u64) -> usize {
        let idx = if self.hash_index {
            line ^ (line >> 11) ^ (line >> 22)
        } else {
            line
        };
        (idx % self.sets.len() as u64) as usize
    }

    /// Look up `line`; on a hit, restamp it and OR in `is_write` dirtiness.
    /// Advances the clock whether it hits or misses.
    pub fn access(&mut self, line: u64, is_write: bool) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.stamp = clock;
                way.dirty |= is_write;
                return true;
            }
        }
        false
    }

    /// Whether `line` is resident. No state change.
    pub fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().any(|w| w.valid && w.line == line)
    }

    /// The (set, way) of `line` if resident. No state change.
    pub fn probe(&self, line: u64) -> Option<(usize, usize)> {
        let set = self.set_of(line);
        self.sets[set]
            .iter()
            .position(|w| w.valid && w.line == line)
            .map(|way| (set, way))
    }

    /// Install `line` (must be absent), evicting the LRU victim if the set
    /// is full. Advances the clock.
    pub fn fill(&mut self, line: u64, dirty: bool) -> FillSlot {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(line);
        debug_assert!(
            !self.sets[set].iter().any(|w| w.valid && w.line == line),
            "golden: fill of resident line {line:#x}"
        );
        let victim = self.pick_victim(set);
        let ways = &mut self.sets[set];
        let displaced = if ways[victim].valid {
            Some(Victim {
                line: ways[victim].line,
                dirty: ways[victim].dirty,
            })
        } else {
            None
        };
        ways[victim] = Way {
            valid: true,
            dirty,
            line,
            stamp: clock,
        };
        FillSlot {
            set,
            way: victim,
            victim: displaced,
        }
    }

    /// Victim way for a fill into `set`: first invalid way; else, under
    /// write-aware replacement, the smallest-stamp *clean* way if any; else
    /// the smallest-stamp way overall. All scans go in way order with a
    /// strict `<` comparison.
    fn pick_victim(&self, set: usize) -> usize {
        let ways = &self.sets[set];
        if let Some(i) = ways.iter().position(|w| !w.valid) {
            return i;
        }
        let smallest = |want_clean: bool| -> Option<usize> {
            let mut victim = None;
            let mut victim_stamp = u64::MAX;
            for (i, way) in ways.iter().enumerate() {
                if want_clean && way.dirty {
                    continue;
                }
                if way.stamp < victim_stamp {
                    victim = Some(i);
                    victim_stamp = way.stamp;
                }
            }
            victim
        };
        if self.write_aware {
            if let Some(i) = smallest(true) {
                return i;
            }
        }
        smallest(false).expect("full set has a victim")
    }

    /// Drop `line` if resident; returns whether it was dirty. No clock
    /// advance.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.valid = false;
                let was_dirty = way.dirty;
                way.dirty = false;
                return Some(was_dirty);
            }
        }
        None
    }

    /// Mark a resident `line` dirty and restamp it with the *current* clock
    /// (no advance — mirrors the writeback-merge path of the real cache).
    pub fn mark_dirty(&mut self, line: u64) {
        let clock = self.clock;
        let set = self.set_of(line);
        for way in &mut self.sets[set] {
            if way.valid && way.line == line {
                way.dirty = true;
                way.stamp = clock;
                return;
            }
        }
        debug_assert!(false, "golden: mark_dirty of absent line {line:#x}");
    }

    /// Physical slot index of (set, way): `set * assoc + way` (no rotation).
    pub fn slot_index(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_least_recent() {
        let mut c = GoldenCache::new(4, 2, false); // 2 sets, 2 ways
        assert!(!c.access(0, false));
        c.fill(0, false); // set 0
        c.fill(2, false); // set 0
        assert!(c.access(0, false)); // 0 now more recent than 2
        let out = c.fill(4, false); // set 0, evicts 2
        assert_eq!(out.victim.unwrap().line, 2);
    }

    #[test]
    fn mark_dirty_does_not_advance_clock() {
        let mut c = GoldenCache::new(2, 2, false);
        c.fill(0, false); // clock 1
        c.fill(2, false); // clock 2
        c.mark_dirty(0); // stamp(0) = 2 == stamp(2): tie, way order wins
        let out = c.fill(4, false);
        // way 0 holds line 0 with stamp 2; way 1 holds line 2 with stamp 2.
        // Strict `<` comparison keeps the first way as victim.
        assert_eq!(out.victim.unwrap().line, 0);
        assert!(out.victim.unwrap().dirty);
    }

    #[test]
    fn write_aware_prefers_clean_victims() {
        let mut c = GoldenCache::with_write_aware(4, 2, false, true);
        c.fill(0, true); // dirty, LRU
        c.fill(2, false); // clean, newer
        let out = c.fill(4, false);
        assert_eq!(out.victim.unwrap().line, 2, "clean line evicted first");
        assert!(c.contains(0));
        // All dirty: plain LRU fallback.
        c.access(4, true);
        let out = c.fill(6, false);
        assert_eq!(out.victim.unwrap().line, 0);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = GoldenCache::new(2, 1, false);
        c.fill(1, true);
        assert_eq!(c.invalidate(1), Some(true));
        assert_eq!(c.invalidate(1), None);
    }
}
