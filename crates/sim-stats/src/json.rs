//! A hand-rolled JSON emitter with stable key ordering.
//!
//! The workspace is hermetic — no serde — and the simulator's JSON needs
//! are narrow: flat-ish objects of numbers and strings whose dumps must
//! diff cleanly between runs. This module provides a tiny append-only
//! writer plus `to_json` implementations for the statistics types. Keys
//! are emitted exactly in the order the caller writes them (for the
//! registry: insertion order), so two runs that compute the same stats
//! produce byte-identical documents.
//!
//! Number formatting is part of the contract: integers print exactly,
//! floats print via [`fmt_f64`] (shortest round-trip representation, with
//! non-finite values mapped to `null` since JSON has no NaN/Infinity).

use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::registry::{StatValue, StatsRegistry};
use crate::summary::Summary;

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number: shortest representation that
/// round-trips, `null` for NaN/±∞ (JSON has no non-finite literals).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// An append-only JSON object writer.
///
/// ```
/// use sim_stats::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("scheme", "re-nuca");
/// o.field_u64("writes", 42);
/// o.field_f64("ipc", 1.5);
/// assert_eq!(o.finish(), r#"{"scheme":"re-nuca","writes":42,"ipc":1.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Add a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Add a field whose value is already-serialized JSON (object, array…).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialize a float slice as a JSON array via [`fmt_f64`].
pub fn f64_array(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| fmt_f64(x)).collect();
    format!("[{}]", items.join(","))
}

/// Serialize a u64 slice as a JSON array.
pub fn u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Join already-serialized JSON fragments into a JSON array.
pub fn raw_array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

impl StatValue {
    /// The value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            StatValue::Int(v) => v.to_string(),
            StatValue::Float(v) => fmt_f64(*v),
            StatValue::Text(s) => format!("\"{}\"", escape(s)),
        }
    }
}

impl StatsRegistry {
    /// Serialize as a JSON object, keys in insertion order — so two runs
    /// that register the same statistics produce byte-identical dumps.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        for (k, v) in self.iter() {
            o.field_raw(k, &v.to_json());
        }
        o.finish()
    }
}

impl Summary {
    /// Serialize as a JSON object with a fixed key order
    /// (`n`, `mean`, `hmean`, `stdev`, `min`, `max`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("n", self.n as u64)
            .field_f64("mean", self.mean)
            .field_f64("hmean", self.hmean)
            .field_f64("stdev", self.stdev)
            .field_f64("min", self.min)
            .field_f64("max", self.max);
        o.finish()
    }
}

impl Histogram {
    /// Serialize aggregates plus non-empty buckets, key order fixed.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonempty_buckets()
            .map(|(lo, hi, n)| format!("[{lo},{hi},{n}]"))
            .collect();
        let mut o = JsonObject::new();
        o.field_u64("count", self.count())
            .field_u64("sum", self.sum());
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => {
                o.field_u64("min", lo).field_u64("max", hi);
            }
            _ => {
                o.field_raw("min", "null").field_raw("max", "null");
            }
        }
        o.field_f64("mean", self.mean())
            .field_raw("buckets", &format!("[{}]", buckets.join(",")));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let x = 1.0 / 3.0;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
    }

    #[test]
    fn object_builds_in_field_order() {
        let mut o = JsonObject::new();
        o.field_str("b", "x").field_u64("a", 1);
        assert_eq!(o.finish(), r#"{"b":"x","a":1}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn registry_json_preserves_insertion_order() {
        let mut r = StatsRegistry::new();
        r.set("z.last", 1u64);
        r.set("a.first", 2.5f64);
        r.set("name", "wl1");
        assert_eq!(r.to_json(), r#"{"z.last":1,"a.first":2.5,"name":"wl1"}"#);
    }

    #[test]
    fn registry_json_is_stable_across_identical_runs() {
        let build = || {
            let mut r = StatsRegistry::new();
            r.set("l3.writes", 42u64);
            r.set("core0.ipc", 1.25f64);
            r.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn summary_json_key_order() {
        let s = Summary::of(&[1.0, 2.0, 4.0]);
        let j = s.to_json();
        assert!(j.starts_with(r#"{"n":3,"mean":"#), "{j}");
        let n = j.find("\"n\":").unwrap();
        let mean = j.find("\"mean\":").unwrap();
        let max = j.find("\"max\":").unwrap();
        assert!(n < mean && mean < max);
    }

    #[test]
    fn histogram_json_shapes() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let j = h.to_json();
        assert!(j.contains("\"count\":4"));
        assert!(j.contains("\"sum\":106"));
        assert!(j.contains("\"buckets\":[["));
        let empty = Histogram::new().to_json();
        assert!(empty.contains("\"min\":null"));
        assert!(empty.contains("\"buckets\":[]"));
    }

    #[test]
    fn arrays_render() {
        assert_eq!(f64_array(&[1.0, 2.5]), "[1,2.5]");
        assert_eq!(u64_array(&[3, 4]), "[3,4]");
        assert_eq!(f64_array(&[]), "[]");
    }
}
