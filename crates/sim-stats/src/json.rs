//! A hand-rolled JSON emitter with stable key ordering.
//!
//! The workspace is hermetic — no serde — and the simulator's JSON needs
//! are narrow: flat-ish objects of numbers and strings whose dumps must
//! diff cleanly between runs. This module provides a tiny append-only
//! writer plus `to_json` implementations for the statistics types. Keys
//! are emitted exactly in the order the caller writes them (for the
//! registry: insertion order), so two runs that compute the same stats
//! produce byte-identical documents.
//!
//! Number formatting is part of the contract: integers print exactly,
//! floats print via [`fmt_f64`] (shortest round-trip representation, with
//! non-finite values mapped to `null` since JSON has no NaN/Infinity).

use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::registry::{StatValue, StatsRegistry};
use crate::summary::Summary;

/// Escape a string for inclusion in a JSON document (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number: shortest representation that
/// round-trips, `null` for NaN/±∞ (JSON has no non-finite literals).
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// An append-only JSON object writer.
///
/// ```
/// use sim_stats::json::JsonObject;
/// let mut o = JsonObject::new();
/// o.field_str("scheme", "re-nuca");
/// o.field_u64("writes", 42);
/// o.field_f64("ipc", 1.5);
/// assert_eq!(o.finish(), r#"{"scheme":"re-nuca","writes":42,"ipc":1.5}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonObject {
    buf: String,
    any: bool,
}

impl JsonObject {
    /// Start an empty object.
    pub fn new() -> Self {
        JsonObject {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        let _ = write!(self.buf, "\"{}\":", escape(name));
    }

    /// Add a string field.
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "\"{}\"", escape(value));
        self
    }

    /// Add an integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&fmt_f64(value));
        self
    }

    /// Add a field whose value is already-serialized JSON (object, array…).
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the document.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Serialize a float slice as a JSON array via [`fmt_f64`].
pub fn f64_array(xs: &[f64]) -> String {
    let items: Vec<String> = xs.iter().map(|&x| fmt_f64(x)).collect();
    format!("[{}]", items.join(","))
}

/// Serialize a u64 slice as a JSON array.
pub fn u64_array(xs: &[u64]) -> String {
    let items: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Join already-serialized JSON fragments into a JSON array.
pub fn raw_array(items: &[String]) -> String {
    format!("[{}]", items.join(","))
}

impl StatValue {
    /// The value as a JSON fragment.
    pub fn to_json(&self) -> String {
        match self {
            StatValue::Int(v) => v.to_string(),
            StatValue::Float(v) => fmt_f64(*v),
            StatValue::Text(s) => format!("\"{}\"", escape(s)),
        }
    }
}

impl StatsRegistry {
    /// Serialize as a JSON object, keys in insertion order — so two runs
    /// that register the same statistics produce byte-identical dumps.
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        for (k, v) in self.iter() {
            o.field_raw(k, &v.to_json());
        }
        o.finish()
    }
}

impl Summary {
    /// Serialize as a JSON object with a fixed key order
    /// (`n`, `mean`, `hmean`, `stdev`, `min`, `max`).
    pub fn to_json(&self) -> String {
        let mut o = JsonObject::new();
        o.field_u64("n", self.n as u64)
            .field_f64("mean", self.mean)
            .field_f64("hmean", self.hmean)
            .field_f64("stdev", self.stdev)
            .field_f64("min", self.min)
            .field_f64("max", self.max);
        o.finish()
    }
}

impl Histogram {
    /// Serialize aggregates plus non-empty buckets, key order fixed.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .nonempty_buckets()
            .map(|(lo, hi, n)| format!("[{lo},{hi},{n}]"))
            .collect();
        let mut o = JsonObject::new();
        o.field_u64("count", self.count())
            .field_u64("sum", self.sum());
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => {
                o.field_u64("min", lo).field_u64("max", hi);
            }
            _ => {
                o.field_raw("min", "null").field_raw("max", "null");
            }
        }
        o.field_f64("mean", self.mean())
            .field_raw("buckets", &format!("[{}]", buckets.join(",")));
        o.finish()
    }
}

/// A parsed JSON value.
///
/// The counterpart of the emitter above: the campaign aggregator reads
/// `renuca-manifest-v1` documents back, and the verification tooling
/// re-checks emitted reports. Objects keep their key order as a `Vec` of
/// pairs — the same insertion-order philosophy as [`StatsRegistry`], and
/// manifests are small enough that linear key lookup is free.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, keys in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (linear scan; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float (`Num` only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(xs) => Some(xs),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns the root value or an error naming the
/// byte offset of the problem. Trailing non-whitespace is an error, as is
/// nesting deeper than 128 levels (the emitter never produces either).
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs: the emitter never writes them
                            // (it only \u-escapes control characters), but
                            // accept well-formed pairs for completeness.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                                self.pos += 2;
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                                self.pos += 4;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(format!(
                                        "invalid surrogate pair at byte {}",
                                        self.pos
                                    ));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c).ok_or_else(|| {
                                    format!("bad code point at byte {}", self.pos)
                                })?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control char in string at byte {}", self.pos))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via char_indices logic).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        let x = 1.0 / 3.0;
        assert_eq!(fmt_f64(x).parse::<f64>().unwrap(), x);
    }

    #[test]
    fn object_builds_in_field_order() {
        let mut o = JsonObject::new();
        o.field_str("b", "x").field_u64("a", 1);
        assert_eq!(o.finish(), r#"{"b":"x","a":1}"#);
        assert_eq!(JsonObject::new().finish(), "{}");
    }

    #[test]
    fn registry_json_preserves_insertion_order() {
        let mut r = StatsRegistry::new();
        r.set("z.last", 1u64);
        r.set("a.first", 2.5f64);
        r.set("name", "wl1");
        assert_eq!(r.to_json(), r#"{"z.last":1,"a.first":2.5,"name":"wl1"}"#);
    }

    #[test]
    fn registry_json_is_stable_across_identical_runs() {
        let build = || {
            let mut r = StatsRegistry::new();
            r.set("l3.writes", 42u64);
            r.set("core0.ipc", 1.25f64);
            r.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn summary_json_key_order() {
        let s = Summary::of(&[1.0, 2.0, 4.0]);
        let j = s.to_json();
        assert!(j.starts_with(r#"{"n":3,"mean":"#), "{j}");
        let n = j.find("\"n\":").unwrap();
        let mean = j.find("\"mean\":").unwrap();
        let max = j.find("\"max\":").unwrap();
        assert!(n < mean && mean < max);
    }

    #[test]
    fn histogram_json_shapes() {
        let mut h = Histogram::new();
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let j = h.to_json();
        assert!(j.contains("\"count\":4"));
        assert!(j.contains("\"sum\":106"));
        assert!(j.contains("\"buckets\":[["));
        let empty = Histogram::new().to_json();
        assert!(empty.contains("\"min\":null"));
        assert!(empty.contains("\"buckets\":[]"));
    }

    #[test]
    fn arrays_render() {
        assert_eq!(f64_array(&[1.0, 2.5]), "[1,2.5]");
        assert_eq!(u64_array(&[3, 4]), "[3,4]");
        assert_eq!(f64_array(&[]), "[]");
    }

    #[test]
    fn parse_round_trips_emitter_output() {
        let mut o = JsonObject::new();
        o.field_str("name", "wl\"1\"\n")
            .field_u64("writes", 42)
            .field_f64("ipc", 1.0 / 3.0)
            .field_raw("banks", &f64_array(&[1.0, f64::NAN]))
            .field_raw("cfg", "null");
        let doc = o.finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("wl\"1\"\n"));
        assert_eq!(v.get("writes").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ipc").unwrap().as_f64(), Some(1.0 / 3.0));
        let banks = v.get("banks").unwrap().as_array().unwrap();
        assert_eq!(banks[0].as_f64(), Some(1.0));
        assert_eq!(banks[1], JsonValue::Null);
        assert_eq!(v.get("cfg"), Some(&JsonValue::Null));
    }

    #[test]
    fn parse_preserves_object_key_order() {
        let v = parse(r#"{"z":1,"a":[true,false,null],"m":{"x":-2.5e3}}"#).unwrap();
        match &v {
            JsonValue::Object(members) => {
                let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            other => panic!("not an object: {other:?}"),
        }
        assert_eq!(
            v.get("m").unwrap().get("x").unwrap().as_f64(),
            Some(-2500.0)
        );
        assert_eq!(v.get("m").unwrap().get("x").unwrap().as_u64(), None);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\":1,}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}x",
            "\"bad \\q escape\"",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(parse(r#""Aé😀""#).unwrap().as_str(), Some("Aé😀"));
        assert_eq!(
            parse("\"A\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A😀"),
            "surrogate pair decodes"
        );
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn parse_depth_limit_holds() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(parse(&ok).is_ok());
    }
}
