//! Fixed-bucket log2 histograms for latency and queue-depth distributions.

use core::fmt;

/// Number of log2 buckets. Bucket `i` covers values in `[2^(i-1), 2^i)` with
/// bucket 0 covering the single value 0. 48 buckets covers any `u64` latency
/// a cache simulator can produce (2^47 cycles ≈ 16 hours at 2.4 GHz).
const BUCKETS: usize = 48;

/// A log2-bucketed histogram of `u64` samples.
///
/// Used for memory-access latency distributions, NoC queueing delays and DRAM
/// bank occupancy. Constant memory, O(1) insertion, and exact tracking of
/// count/sum/min/max alongside the bucketed shape.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value: 0 -> 0, otherwise `1 + floor(log2(v))`.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            let b = 64 - value.leading_zeros() as usize; // 1 + floor(log2)
            b.min(BUCKETS - 1)
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 for an empty histogram).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample seen (`None` when empty).
    #[inline]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    #[inline]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Approximate p-th percentile (p in \[0,100\]) using the bucket upper
    /// bound. Good enough for reporting latency tails; exactness is not
    /// needed because buckets are log-spaced.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                // Upper bound of bucket i.
                return Some(if i == 0 { 0 } else { (1u64 << i) - 1 });
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterate over non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                if i == 0 {
                    (0, 0, n)
                } else {
                    (1u64 << (i - 1), (1u64 << i) - 1, n)
                }
            })
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:.2}, min={:?}, max={:?})",
            self.count,
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-12);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn percentile_monotone() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p99);
        assert!(p99 >= 511); // 99th percentile of 0..1000 is in the top bucket
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(100);
        b.record(3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 108);
        assert_eq!(a.min(), Some(3));
        assert_eq!(a.max(), Some(100));
    }

    #[test]
    fn nonempty_bucket_iteration() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(5);
        let buckets: Vec<_> = h.nonempty_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (0, 0, 1));
        // 5 falls in [4,7].
        assert_eq!(buckets[1], (4, 7, 1));
    }
}
