//! Statistics infrastructure for the Re-NUCA simulation stack.
//!
//! This crate is deliberately free of any simulator-specific concepts: it
//! provides the counters, histograms, summary mathematics (arithmetic,
//! harmonic and geometric means, min/max, coefficient of variation), a
//! hand-rolled stable-key-order JSON emitter and matching parser, a
//! fixed-capacity typed event trace ([`trace`]), and the plain-text
//! table/bar-chart rendering that the experiment harness uses to print
//! paper-style figures and tables.
//!
//! Everything here is `#![forbid(unsafe_code)]` and allocation-conscious:
//! counters are plain integers, histograms use fixed log2 bucketing, and the
//! registry keeps insertion order so dumps are deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod json;
pub mod registry;
pub mod render;
pub mod summary;
pub mod trace;

pub use counter::{Counter, RateCounter};
pub use histogram::Histogram;
pub use json::{JsonObject, JsonValue};
pub use registry::{StatValue, StatsRegistry};
pub use render::{bar_chart, grouped_series, Table};
pub use summary::{
    amean, cv, gmean, hmean, max_f64, min_f64, normalize_to, percent_change, stdev, Summary,
};
pub use trace::{TraceBuffer, TraceCategory, TraceEvent, TRACE_ALL};
