//! Lightweight event tracing: a fixed-capacity ring buffer of typed events.
//!
//! Components that want to expose *why* a counter moved (which line was
//! filled into which bank, when a rotation remapped a set, which load
//! blocked the ROB head) record [`TraceEvent`]s into a [`TraceBuffer`].
//! The buffer is sized once at construction and never reallocates; when it
//! is full, the oldest events are overwritten and counted as dropped, so
//! overflow is observable instead of silent.
//!
//! Recording is gated by a per-category bitmask ([`TraceCategory::bit`]).
//! With the mask at zero (the default, see [`TraceBuffer::disabled`]) the
//! entire record path is a single branch on an integer — no allocation, no
//! formatting — which keeps the tracing hooks cheap enough to leave compiled
//! into the simulator hot paths (see the overhead budget in DESIGN.md).

use crate::json::{self, JsonObject};

/// Event categories; each occupies one bit in a [`TraceBuffer`]'s enable
/// mask, so categories can be toggled independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceCategory {
    /// A demand or prefetch fill into the LLC.
    Fill = 0,
    /// A dirty writeback from a private cache into the LLC.
    Writeback = 1,
    /// A wear-leveling remap (intra-bank set rotation advance).
    Remap = 2,
    /// A load blocking at the head of the ROB (criticality signal).
    RobBlock = 3,
    /// A coherence transition (inclusive-L3 back-invalidation).
    Coherence = 4,
}

impl TraceCategory {
    /// All categories, in bit order.
    pub const ALL: [TraceCategory; 5] = [
        TraceCategory::Fill,
        TraceCategory::Writeback,
        TraceCategory::Remap,
        TraceCategory::RobBlock,
        TraceCategory::Coherence,
    ];

    /// The mask bit for this category.
    #[inline]
    pub fn bit(self) -> u32 {
        1u32 << (self as u32)
    }

    /// Stable lowercase name used in JSON output and documentation.
    pub fn name(self) -> &'static str {
        match self {
            TraceCategory::Fill => "fill",
            TraceCategory::Writeback => "writeback",
            TraceCategory::Remap => "remap",
            TraceCategory::RobBlock => "rob_block",
            TraceCategory::Coherence => "coherence",
        }
    }
}

/// Mask enabling every category.
pub const TRACE_ALL: u32 = (1 << TraceCategory::ALL.len()) - 1;

/// A single typed trace event. Compact and `Copy`: events are stored inline
/// in the ring buffer, never boxed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A line was filled into an LLC bank.
    Fill {
        /// Simulation cycle of the fill.
        cycle: u64,
        /// Requesting core.
        core: u32,
        /// Destination LLC bank.
        bank: u32,
        /// Line address (block-aligned, in line units).
        line: u64,
    },
    /// A dirty line was written back into an LLC bank.
    Writeback {
        /// Simulation cycle of the writeback.
        cycle: u64,
        /// Core whose private cache evicted the line.
        core: u32,
        /// Destination LLC bank.
        bank: u32,
        /// Line address.
        line: u64,
    },
    /// An intra-bank set rotation advanced (wear-leveling remap).
    Remap {
        /// Simulation cycle of the rotation.
        cycle: u64,
        /// Bank whose mapping rotated.
        bank: u32,
        /// Lines flushed to honour the new mapping.
        flushed: u32,
    },
    /// A load blocked at the head of the ROB.
    RobBlock {
        /// Simulation cycle the block was detected.
        cycle: u64,
        /// Core whose ROB head blocked.
        core: u32,
        /// Program counter of the blocking load.
        pc: u64,
    },
    /// A coherence transition: an inclusive-L3 eviction back-invalidated a
    /// private copy.
    Coherence {
        /// Simulation cycle of the invalidation.
        cycle: u64,
        /// Core whose private copy was invalidated.
        core: u32,
        /// Line address.
        line: u64,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    #[inline]
    pub fn category(self) -> TraceCategory {
        match self {
            TraceEvent::Fill { .. } => TraceCategory::Fill,
            TraceEvent::Writeback { .. } => TraceCategory::Writeback,
            TraceEvent::Remap { .. } => TraceCategory::Remap,
            TraceEvent::RobBlock { .. } => TraceCategory::RobBlock,
            TraceEvent::Coherence { .. } => TraceCategory::Coherence,
        }
    }

    /// Simulation cycle the event occurred at.
    #[inline]
    pub fn cycle(self) -> u64 {
        match self {
            TraceEvent::Fill { cycle, .. }
            | TraceEvent::Writeback { cycle, .. }
            | TraceEvent::Remap { cycle, .. }
            | TraceEvent::RobBlock { cycle, .. }
            | TraceEvent::Coherence { cycle, .. } => cycle,
        }
    }

    /// One-line JSON object for this event (stable key order:
    /// `kind`, `cycle`, then the kind-specific fields).
    pub fn to_json(self) -> String {
        let mut o = JsonObject::new();
        o.field_str("kind", self.category().name());
        o.field_u64("cycle", self.cycle());
        match self {
            TraceEvent::Fill {
                core, bank, line, ..
            }
            | TraceEvent::Writeback {
                core, bank, line, ..
            } => {
                o.field_u64("core", core as u64);
                o.field_u64("bank", bank as u64);
                o.field_u64("line", line);
            }
            TraceEvent::Remap { bank, flushed, .. } => {
                o.field_u64("bank", bank as u64);
                o.field_u64("flushed", flushed as u64);
            }
            TraceEvent::RobBlock { core, pc, .. } => {
                o.field_u64("core", core as u64);
                o.field_u64("pc", pc);
            }
            TraceEvent::Coherence { core, line, .. } => {
                o.field_u64("core", core as u64);
                o.field_u64("line", line);
            }
        }
        o.finish()
    }
}

/// A fixed-capacity ring buffer of [`TraceEvent`]s with per-category enable
/// masks and overflow accounting.
///
/// * `recorded` counts every event accepted (enabled category, capacity > 0),
///   including those later overwritten.
/// * `dropped` counts accepted events that were overwritten by wraparound;
///   `recorded - dropped == len()` always holds.
/// * Events whose category is disabled are rejected before any work happens
///   and are not counted at all.
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    mask: u32,
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the next slot to write (== logical end of the ring).
    next: usize,
    recorded: u64,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer with every category disabled and zero capacity. Recording
    /// into it is a single branch; this is the default state wired into the
    /// simulator.
    pub fn disabled() -> Self {
        TraceBuffer::default()
    }

    /// A buffer holding up to `capacity` events, all categories enabled.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            mask: TRACE_ALL,
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            next: 0,
            recorded: 0,
            dropped: 0,
        }
    }

    /// A buffer holding up to `capacity` events with only the given
    /// categories enabled.
    pub fn with_categories(capacity: usize, categories: &[TraceCategory]) -> Self {
        let mut t = TraceBuffer::new(capacity);
        t.mask = categories.iter().fold(0, |m, c| m | c.bit());
        t
    }

    /// The current enable mask (bit per [`TraceCategory`]).
    pub fn mask(&self) -> u32 {
        self.mask
    }

    /// Replace the enable mask wholesale.
    pub fn set_mask(&mut self, mask: u32) {
        self.mask = mask & TRACE_ALL;
    }

    /// Enable one category.
    pub fn enable(&mut self, cat: TraceCategory) {
        self.mask |= cat.bit();
    }

    /// Disable one category.
    pub fn disable(&mut self, cat: TraceCategory) {
        self.mask &= !cat.bit();
    }

    /// Whether a category is currently recorded.
    #[inline]
    pub fn is_enabled(&self, cat: TraceCategory) -> bool {
        self.mask & cat.bit() != 0
    }

    /// Whether any category is enabled. Hot paths may use this to skip
    /// computing event fields entirely.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.mask != 0 && self.cap != 0
    }

    /// Record an event. Returns `true` if the event was accepted. The
    /// disabled path (mask bit clear or zero capacity) is a branch and an
    /// early return — no allocation, no copy.
    #[inline]
    pub fn record(&mut self, ev: TraceEvent) -> bool {
        if self.mask & ev.category().bit() == 0 || self.cap == 0 {
            return false;
        }
        self.push(ev);
        true
    }

    fn push(&mut self, ev: TraceEvent) {
        self.recorded += 1;
        if self.buf.len() < self.cap {
            self.buf.push(ev);
            self.next = self.buf.len() % self.cap;
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of events held before wraparound.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events accepted since creation (survivors + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Accepted events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate over the held events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (tail, head) = if self.buf.len() < self.cap {
            (&self.buf[..], &[][..])
        } else {
            let (h, t) = self.buf.split_at(self.next);
            (t, h)
        };
        tail.iter().chain(head.iter())
    }

    /// Drop all held events and reset the overflow accounting; the enable
    /// mask and capacity are kept (warm-up boundary).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.recorded = 0;
        self.dropped = 0;
    }

    /// JSON object: `{"capacity":…,"recorded":…,"dropped":…,"events":[…]}`
    /// with events oldest-first.
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self.iter().map(|e| e.to_json()).collect();
        let mut o = JsonObject::new();
        o.field_u64("capacity", self.cap as u64);
        o.field_u64("recorded", self.recorded);
        o.field_u64("dropped", self.dropped);
        o.field_raw("events", &json::raw_array(&events));
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(cycle: u64) -> TraceEvent {
        TraceEvent::Fill {
            cycle,
            core: 1,
            bank: 2,
            line: 100 + cycle,
        }
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.is_active());
        assert!(!t.record(fill(1)));
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn category_mask_filters() {
        let mut t = TraceBuffer::with_categories(8, &[TraceCategory::Remap]);
        assert!(!t.record(fill(1)));
        assert!(t.record(TraceEvent::Remap {
            cycle: 5,
            bank: 3,
            flushed: 12
        }));
        assert_eq!(t.recorded(), 1);
        assert!(t.is_enabled(TraceCategory::Remap));
        assert!(!t.is_enabled(TraceCategory::Fill));
        t.enable(TraceCategory::Fill);
        assert!(t.record(fill(2)));
        t.disable(TraceCategory::Fill);
        assert!(!t.record(fill(3)));
        assert_eq!(t.recorded(), 2);
    }

    #[test]
    fn wraparound_overwrites_oldest_and_counts_drops() {
        let mut t = TraceBuffer::new(3);
        for c in 0..5 {
            assert!(t.record(fill(c)));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded() - t.dropped(), t.len() as u64);
        // Survivors are the newest three, oldest first.
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn iter_is_oldest_first_before_wrap() {
        let mut t = TraceBuffer::new(4);
        for c in 0..3 {
            t.record(fill(c));
        }
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![0, 1, 2]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut t = TraceBuffer::new(2);
        t.record(fill(0));
        t.record(fill(1));
        assert_eq!(t.dropped(), 0);
        t.record(fill(2)); // overwrites cycle 0
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![1, 2]);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn clear_resets_accounting_but_keeps_mask() {
        let mut t = TraceBuffer::with_categories(2, &[TraceCategory::Fill]);
        t.record(fill(0));
        t.record(fill(1));
        t.record(fill(2));
        t.clear();
        assert_eq!(t.len(), 0);
        assert_eq!(t.recorded(), 0);
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.capacity(), 2);
        assert!(t.is_enabled(TraceCategory::Fill));
        assert!(!t.is_enabled(TraceCategory::Remap));
        t.record(fill(7));
        let cycles: Vec<u64> = t.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7]);
    }

    #[test]
    fn event_json_shape() {
        let e = TraceEvent::Remap {
            cycle: 9,
            bank: 4,
            flushed: 2,
        };
        assert_eq!(
            e.to_json(),
            r#"{"kind":"remap","cycle":9,"bank":4,"flushed":2}"#
        );
        let mut t = TraceBuffer::new(2);
        t.record(e);
        let j = t.to_json();
        assert!(j.starts_with(r#"{"capacity":2,"recorded":1,"dropped":0,"events":["#));
    }

    #[test]
    fn every_category_round_trips_kind_name() {
        for (i, c) in TraceCategory::ALL.iter().enumerate() {
            assert_eq!(c.bit(), 1 << i);
            assert!(!c.name().is_empty());
        }
        assert_eq!(TRACE_ALL, 0b11111);
    }
}
