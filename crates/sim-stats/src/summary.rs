//! Summary mathematics used when aggregating per-bank / per-workload results.
//!
//! The paper reports *harmonic means* of per-bank lifetimes across workloads
//! (harmonic because lifetime is a rate-like quantity dominated by the worst
//! case) and IPC improvements normalized to S-NUCA. These helpers implement
//! that arithmetic once, with careful handling of empty and degenerate
//! inputs.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn amean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Harmonic mean: `n / Σ(1/x)`.
///
/// Returns 0.0 for an empty slice, and 0.0 if any element is `<= 0` (a bank
/// with zero lifetime pins the harmonic mean to zero, which is exactly the
/// semantics the paper's lifetime metric needs).
pub fn hmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &x in xs {
        if x <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / x;
    }
    xs.len() as f64 / denom
}

/// Geometric mean. Returns 0.0 for an empty slice or any non-positive value.
pub fn gmean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut log_sum = 0.0;
    for &x in xs {
        if x <= 0.0 {
            return 0.0;
        }
        log_sum += x.ln();
    }
    (log_sum / xs.len() as f64).exp()
}

/// Population standard deviation. 0.0 for slices with < 2 elements.
pub fn stdev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = amean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    var.sqrt()
}

/// Coefficient of variation (stdev / mean); the paper's "variation in
/// lifetimes between banks". 0.0 when the mean is 0.
pub fn cv(xs: &[f64]) -> f64 {
    let m = amean(xs);
    if m == 0.0 {
        0.0
    } else {
        stdev(xs) / m
    }
}

/// Minimum of a slice (`None` when empty). NaNs are ignored.
pub fn min_f64(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.min(x),
            })
        })
}

/// Maximum of a slice (`None` when empty). NaNs are ignored.
pub fn max_f64(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| {
            Some(match acc {
                None => x,
                Some(a) => a.max(x),
            })
        })
}

/// Percent change of `new` relative to `base`: `(new - base) / base * 100`.
/// Returns 0.0 when `base` is 0 to keep report tables readable.
pub fn percent_change(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (new - base) / base * 100.0
    }
}

/// Normalize each element of `xs` to the corresponding element of `base`
/// (element-wise ratio). Panics if lengths differ — that is a harness bug.
pub fn normalize_to(xs: &[f64], base: &[f64]) -> Vec<f64> {
    assert_eq!(
        xs.len(),
        base.len(),
        "normalize_to: mismatched series lengths"
    );
    xs.iter()
        .zip(base.iter())
        .map(|(&x, &b)| if b == 0.0 { 0.0 } else { x / b })
        .collect()
}

/// A one-pass summary of a data series: n, mean, stdev, min, max.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Harmonic mean (0.0 if any sample ≤ 0).
    pub hmean: f64,
    /// Population standard deviation.
    pub stdev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarize a slice. Empty slices produce an all-zero summary.
    pub fn of(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return Summary::default();
        }
        Summary {
            n: xs.len(),
            mean: amean(xs),
            hmean: hmean(xs),
            stdev: stdev(xs),
            min: min_f64(xs).unwrap_or(0.0),
            max: max_f64(xs).unwrap_or(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-10;

    #[test]
    fn amean_basic() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < EPS);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn hmean_basic() {
        // hmean(1, 2, 4) = 3 / (1 + 0.5 + 0.25) = 12/7
        assert!((hmean(&[1.0, 2.0, 4.0]) - 12.0 / 7.0).abs() < EPS);
    }

    #[test]
    fn hmean_dominated_by_small_values() {
        let h = hmean(&[0.1, 100.0, 100.0]);
        assert!(h < 0.3, "harmonic mean must be pinned near the worst case");
    }

    #[test]
    fn hmean_zero_element_is_zero() {
        assert_eq!(hmean(&[0.0, 5.0]), 0.0);
        assert_eq!(hmean(&[]), 0.0);
    }

    #[test]
    fn hmean_le_gmean_le_amean() {
        let xs = [2.0, 3.0, 5.0, 7.0, 11.0];
        let h = hmean(&xs);
        let g = gmean(&xs);
        let a = amean(&xs);
        assert!(h <= g + EPS && g <= a + EPS, "AM-GM-HM inequality violated");
    }

    #[test]
    fn gmean_basic() {
        assert!((gmean(&[1.0, 4.0]) - 2.0).abs() < EPS);
        assert_eq!(gmean(&[1.0, -1.0]), 0.0);
    }

    #[test]
    fn stdev_and_cv() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stdev(&xs) - 2.0).abs() < EPS);
        assert!((cv(&xs) - 2.0 / 5.0).abs() < EPS);
        assert_eq!(stdev(&[1.0]), 0.0);
    }

    #[test]
    fn min_max_ignore_nan() {
        let xs = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(min_f64(&xs), Some(1.0));
        assert_eq!(max_f64(&xs), Some(3.0));
        assert_eq!(min_f64(&[]), None);
    }

    #[test]
    fn percent_change_basic() {
        assert!((percent_change(110.0, 100.0) - 10.0).abs() < EPS);
        assert!((percent_change(90.0, 100.0) + 10.0).abs() < EPS);
        assert_eq!(percent_change(5.0, 0.0), 0.0);
    }

    #[test]
    fn normalize_basic() {
        let r = normalize_to(&[2.0, 6.0], &[1.0, 3.0]);
        assert_eq!(r, vec![2.0, 2.0]);
        let r = normalize_to(&[2.0], &[0.0]);
        assert_eq!(r, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn normalize_length_mismatch_panics() {
        normalize_to(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert!((s.mean - 2.0).abs() < EPS);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(Summary::of(&[]), Summary::default());
    }
}
