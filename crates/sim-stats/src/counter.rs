//! Simple monotonic event counters.

use core::fmt;

/// A monotonically increasing event counter.
///
/// `Counter` is the workhorse statistic of the simulator: cache hits, misses,
/// writebacks, NoC flits, DRAM row conflicts and so on are all `Counter`s.
/// It is a thin newtype over `u64` so it costs nothing at runtime, but it
/// makes intent explicit and provides convenience arithmetic (rates, per-kilo
/// normalization) used throughout the experiment harness.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Counter(u64);

impl Counter {
    /// A counter starting at zero.
    #[inline]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Value as `f64` (for ratio computations).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Events per `per` units of `denom` (e.g. misses per 1000 instructions).
    ///
    /// Returns 0.0 when `denom` is zero rather than NaN so that empty runs
    /// render cleanly.
    #[inline]
    pub fn per(self, denom: u64, per: u64) -> f64 {
        if denom == 0 {
            0.0
        } else {
            self.0 as f64 * per as f64 / denom as f64
        }
    }

    /// Ratio of this counter to `denom` (0.0 when `denom` is zero).
    #[inline]
    pub fn ratio(self, denom: u64) -> f64 {
        self.per(denom, 1)
    }

    /// Reset back to zero (used between measurement phases, e.g. after cache
    /// warm-up).
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Counter {
    fn from(v: u64) -> Self {
        Counter(v)
    }
}

impl core::ops::AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

/// A counter paired with an elapsed-time denominator, yielding rates.
///
/// Used for write-rate extrapolation in the wear model: the tracker counts
/// writes during the measured window and `RateCounter` turns that into
/// events/cycle and events/second at a given clock frequency.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateCounter {
    events: Counter,
    cycles: u64,
}

impl RateCounter {
    /// New empty rate counter.
    pub const fn new() -> Self {
        RateCounter {
            events: Counter::new(),
            cycles: 0,
        }
    }

    /// Record `n` events.
    #[inline]
    pub fn record(&mut self, n: u64) {
        self.events.add(n);
    }

    /// Set the elapsed window length in cycles.
    #[inline]
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Total events recorded.
    #[inline]
    pub fn events(&self) -> u64 {
        self.events.get()
    }

    /// Window length in cycles.
    #[inline]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Events per cycle (0.0 for an empty window).
    #[inline]
    pub fn per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.events.as_f64() / self.cycles as f64
        }
    }

    /// Events per second at clock frequency `freq_hz`.
    #[inline]
    pub fn per_second(&self, freq_hz: f64) -> f64 {
        self.per_cycle() * freq_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basic_increments() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c += 8;
        assert_eq!(c.get(), 50);
    }

    #[test]
    fn counter_per_kilo() {
        let mut c = Counter::new();
        c.add(5);
        // 5 events over 1000 instructions => 5.0 per kilo-instruction.
        assert!((c.per(1000, 1000) - 5.0).abs() < 1e-12);
        // 5 events over 2000 instructions => 2.5 per kilo.
        assert!((c.per(2000, 1000) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn counter_zero_denominator_is_zero_not_nan() {
        let c = Counter::from(7);
        assert_eq!(c.per(0, 1000), 0.0);
        assert_eq!(c.ratio(0), 0.0);
    }

    #[test]
    fn counter_reset() {
        let mut c = Counter::from(9);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn rate_counter_rates() {
        let mut r = RateCounter::new();
        r.record(100);
        r.set_cycles(50);
        assert!((r.per_cycle() - 2.0).abs() < 1e-12);
        assert!((r.per_second(2.4e9) - 4.8e9).abs() < 1.0);
    }

    #[test]
    fn rate_counter_empty_window() {
        let r = RateCounter::new();
        assert_eq!(r.per_cycle(), 0.0);
        assert_eq!(r.per_second(2.4e9), 0.0);
    }

    #[test]
    fn counter_display() {
        let c = Counter::from(123);
        assert_eq!(format!("{c}"), "123");
        assert_eq!(format!("{c:?}"), "123");
    }
}
