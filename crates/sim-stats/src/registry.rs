//! Ordered name → value registry for dumping simulator statistics.

use std::collections::HashMap;
use std::fmt;

/// A single statistic value.
#[derive(Clone, Debug, PartialEq)]
pub enum StatValue {
    /// An event count.
    Int(u64),
    /// A derived metric (rate, ratio, years…).
    Float(f64),
    /// A free-form annotation (scheme name, workload name…).
    Text(String),
}

impl fmt::Display for StatValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatValue::Int(v) => write!(f, "{v}"),
            StatValue::Float(v) => write!(f, "{v:.6}"),
            StatValue::Text(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for StatValue {
    fn from(v: u64) -> Self {
        StatValue::Int(v)
    }
}
impl From<f64> for StatValue {
    fn from(v: f64) -> Self {
        StatValue::Float(v)
    }
}
impl From<&str> for StatValue {
    fn from(v: &str) -> Self {
        StatValue::Text(v.to_owned())
    }
}
impl From<String> for StatValue {
    fn from(v: String) -> Self {
        StatValue::Text(v)
    }
}

/// An insertion-ordered collection of named statistics.
///
/// Simulator components each dump into a shared registry at the end of a run
/// (`l3.bank3.writes`, `core5.ipc`, …). Insertion order is preserved so dumps
/// are stable and diffable; lookup is O(1) via a side index.
#[derive(Clone, Debug, Default)]
pub struct StatsRegistry {
    entries: Vec<(String, StatValue)>,
    index: HashMap<String, usize>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or overwrite a statistic.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<StatValue>) {
        let name = name.into();
        let value = value.into();
        if let Some(&i) = self.index.get(&name) {
            self.entries[i].1 = value;
        } else {
            self.index.insert(name.clone(), self.entries.len());
            self.entries.push((name, value));
        }
    }

    /// Look up a statistic by name.
    pub fn get(&self, name: &str) -> Option<&StatValue> {
        self.index.get(name).map(|&i| &self.entries[i].1)
    }

    /// Look up an integer statistic; returns `None` for missing or non-Int.
    pub fn get_int(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(StatValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a float statistic, coercing Int to f64.
    pub fn get_float(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(StatValue::Float(v)) => Some(*v),
            Some(StatValue::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Number of statistics stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StatValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render as `name = value` lines, one per entry, in insertion order.
    pub fn dump(&self) -> String {
        let mut out = String::with_capacity(self.entries.len() * 32);
        for (k, v) in &self.entries {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Rebuild the lookup index from the entry list (for registries
    /// reconstructed from an external dump, where only entries are known).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (k, _))| (k.clone(), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get() {
        let mut r = StatsRegistry::new();
        r.set("l3.writes", 42u64);
        r.set("core0.ipc", 1.5f64);
        r.set("scheme", "re-nuca");
        assert_eq!(r.get_int("l3.writes"), Some(42));
        assert_eq!(r.get_float("core0.ipc"), Some(1.5));
        assert_eq!(
            r.get("scheme"),
            Some(&StatValue::Text("re-nuca".to_owned()))
        );
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn overwrite_keeps_position() {
        let mut r = StatsRegistry::new();
        r.set("a", 1u64);
        r.set("b", 2u64);
        r.set("a", 10u64);
        let keys: Vec<_> = r.iter().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(keys, vec!["a", "b"]);
        assert_eq!(r.get_int("a"), Some(10));
    }

    #[test]
    fn int_coerces_to_float() {
        let mut r = StatsRegistry::new();
        r.set("n", 7u64);
        assert_eq!(r.get_float("n"), Some(7.0));
        assert_eq!(r.get_int("n"), Some(7));
    }

    #[test]
    fn dump_is_ordered() {
        let mut r = StatsRegistry::new();
        r.set("z", 1u64);
        r.set("a", 2u64);
        let dump = r.dump();
        let z_pos = dump.find("z = ").unwrap();
        let a_pos = dump.find("a = ").unwrap();
        assert!(z_pos < a_pos, "insertion order must be preserved");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut r = StatsRegistry::new();
        r.set("x", 5u64);
        // Simulate a reconstructed registry: entries present, index empty.
        let mut copy = StatsRegistry {
            entries: r.entries.clone(),
            index: HashMap::new(),
        };
        assert_eq!(copy.get_int("x"), None);
        copy.rebuild_index();
        assert_eq!(copy.get_int("x"), Some(5));
    }
}
