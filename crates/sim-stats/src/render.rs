//! Plain-text rendering of tables, bar charts and grouped series.
//!
//! The experiment binaries print paper-style figures to stdout; these helpers
//! keep all the column-width and bar-scaling fiddliness in one place.

/// A simple column-aligned text table.
///
/// ```
/// use sim_stats::Table;
/// let mut t = Table::new(&["App", "WPKI", "MPKI"]);
/// t.row(&["mcf".into(), "68.67".into(), "55.29".into()]);
/// let s = t.render();
/// assert!(s.contains("mcf"));
/// ```
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows are a harness bug and panic.
    pub fn row(&mut self, cells: &[String]) {
        assert!(
            cells.len() <= self.headers.len(),
            "Table::row: {} cells for {} columns",
            cells.len(),
            self.headers.len()
        );
        let mut r = cells.to_vec();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
    }

    /// Convenience: append a row of (label, f64 values) with fixed precision.
    pub fn row_f64(&mut self, label: &str, values: &[f64], precision: usize) {
        let mut cells = Vec::with_capacity(values.len() + 1);
        cells.push(label.to_owned());
        for v in values {
            cells.push(format!("{v:.precision$}"));
        }
        self.row(&cells);
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing padding for cleanliness.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            emit_row(&mut out, row);
        }
        out
    }
}

/// Render a horizontal ASCII bar chart: one `(label, value)` bar per line,
/// scaled so the longest bar is `width` characters.
pub fn bar_chart(title: &str, data: &[(String, f64)], width: usize) -> String {
    let max = data
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);
    let label_w = data.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, value) in data {
        let bar_len = ((value / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<label_w$} |{} {value:.3}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Render a grouped series (e.g. per-bank lifetime for several schemes):
/// one row per group, one column per series, like the paper's clustered bar
/// figures but in table form.
pub fn grouped_series(
    title: &str,
    group_labels: &[String],
    series_names: &[&str],
    // values[s][g] = value of series s at group g
    values: &[Vec<f64>],
    precision: usize,
) -> String {
    assert_eq!(
        series_names.len(),
        values.len(),
        "grouped_series: series name/value count mismatch"
    );
    for (s, vs) in values.iter().enumerate() {
        assert_eq!(
            vs.len(),
            group_labels.len(),
            "grouped_series: series {s} has wrong group count"
        );
    }
    let mut headers = vec![""];
    headers.extend_from_slice(series_names);
    let mut t = Table::new(&headers);
    for (g, label) in group_labels.iter().enumerate() {
        let row: Vec<f64> = values.iter().map(|vs| vs[g]).collect();
        t.row_f64(label, &row, precision);
    }
    format!("{title}\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let mut t = Table::new(&["App", "WPKI"]);
        t.row(&["mcf".into(), "68.67".into()]);
        t.row(&["libquantum".into(), "11.67".into()]);
        let s = t.render();
        assert!(s.contains("App"));
        assert!(s.contains("libquantum"));
        // Header separator exists.
        assert!(s.lines().nth(1).unwrap().starts_with('-'));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["x".into()]);
        assert!(t.render().contains('x'));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn table_rejects_long_rows() {
        let mut t = Table::new(&["a"]);
        t.row(&["x".into(), "y".into()]);
    }

    #[test]
    fn row_f64_formats_precision() {
        let mut t = Table::new(&["lbl", "v"]);
        t.row_f64("x", &[1.23456], 2);
        assert!(t.render().contains("1.23"));
    }

    #[test]
    fn bar_chart_scales_to_width() {
        let data = vec![("a".to_owned(), 1.0), ("b".to_owned(), 2.0)];
        let s = bar_chart("demo", &data, 10);
        // b is the max -> 10 hashes; a -> 5 hashes.
        assert!(s.contains(&"#".repeat(10)));
        let a_line = s.lines().find(|l| l.starts_with('a')).unwrap();
        assert_eq!(a_line.matches('#').count(), 5);
    }

    #[test]
    fn bar_chart_handles_all_zero() {
        let data = vec![("a".to_owned(), 0.0)];
        let s = bar_chart("demo", &data, 10);
        assert!(s.contains("0.000"));
    }

    #[test]
    fn grouped_series_renders_matrix() {
        let s = grouped_series(
            "Fig 12",
            &["CB-0".to_owned(), "CB-1".to_owned()],
            &["S-NUCA", "R-NUCA"],
            &[vec![4.0, 4.1], vec![2.0, 6.0]],
            2,
        );
        assert!(s.contains("Fig 12"));
        assert!(s.contains("CB-1"));
        assert!(s.contains("6.00"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn grouped_series_validates_shape() {
        grouped_series("t", &["g".to_owned()], &["a", "b"], &[vec![1.0]], 2);
    }
}
