//! Property-based tests for the statistics primitives, driven by seeded
//! `sim-rng` generator loops (hermetic replacement for proptest — the
//! cases are deterministic, so a failure reproduces on every run).

use sim_rng::SimRng;
use sim_stats::{amean, gmean, hmean, max_f64, min_f64, Histogram, Summary};

const CASES: usize = 64;

fn f64_vec(rng: &mut SimRng, len: std::ops::Range<usize>, lo: f64, hi: f64) -> Vec<f64> {
    let n = rng.gen_range_usize(len);
    (0..n).map(|_| rng.gen_f64_range(lo, hi)).collect()
}

fn u64_vec(rng: &mut SimRng, len: std::ops::Range<usize>, bound: u64) -> Vec<u64> {
    let n = rng.gen_range_usize(len);
    (0..n).map(|_| rng.gen_bounded(bound)).collect()
}

/// The classic mean inequality chain holds for any positive series.
#[test]
fn am_gm_hm_inequality() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0001);
    for case in 0..CASES {
        let xs = f64_vec(&mut rng, 1..64, 0.001, 1e6);
        let h = hmean(&xs);
        let g = gmean(&xs);
        let a = amean(&xs);
        assert!(h <= g * (1.0 + 1e-9), "case {case}: HM {h} > GM {g}");
        assert!(g <= a * (1.0 + 1e-9), "case {case}: GM {g} > AM {a}");
    }
}

/// All means lie between min and max.
#[test]
fn means_bounded_by_extremes() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0002);
    for case in 0..CASES {
        let xs = f64_vec(&mut rng, 1..64, 0.001, 1e6);
        let lo = min_f64(&xs).unwrap();
        let hi = max_f64(&xs).unwrap();
        for m in [hmean(&xs), gmean(&xs), amean(&xs)] {
            assert!(
                m >= lo * (1.0 - 1e-9) && m <= hi * (1.0 + 1e-9),
                "case {case}: {m} outside [{lo}, {hi}]"
            );
        }
    }
}

/// Scaling the series scales every mean linearly.
#[test]
fn means_are_homogeneous() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0003);
    for case in 0..CASES {
        let xs = f64_vec(&mut rng, 1..32, 0.01, 1e4);
        let k = rng.gen_f64_range(0.01, 100.0);
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        assert!(
            (amean(&scaled) - k * amean(&xs)).abs() < 1e-6 * k * amean(&xs).max(1.0),
            "case {case}"
        );
        assert!(
            (hmean(&scaled) - k * hmean(&xs)).abs() < 1e-6 * k * hmean(&xs).max(1.0),
            "case {case}"
        );
    }
}

/// Histogram count/sum/min/max are exact regardless of bucketing.
#[test]
fn histogram_exact_aggregates() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0004);
    for case in 0..CASES {
        let xs = u64_vec(&mut rng, 1..256, 1_000_000);
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        assert_eq!(h.count(), xs.len() as u64, "case {case}");
        assert_eq!(h.sum(), xs.iter().sum::<u64>(), "case {case}");
        assert_eq!(h.min(), xs.iter().min().copied(), "case {case}");
        assert_eq!(h.max(), xs.iter().max().copied(), "case {case}");
        // Bucket counts add up.
        let bucketed: u64 = h.nonempty_buckets().map(|(_, _, n)| n).sum();
        assert_eq!(bucketed, xs.len() as u64, "case {case}");
    }
}

/// Merging two histograms equals recording the concatenation.
#[test]
fn histogram_merge_is_concat() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0005);
    for case in 0..CASES {
        let a = u64_vec(&mut rng, 0..128, 100_000);
        let b = u64_vec(&mut rng, 0..128, 100_000);
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &x in &a {
            ha.record(x);
            hc.record(x);
        }
        for &x in &b {
            hb.record(x);
            hc.record(x);
        }
        ha.merge(&hb);
        assert_eq!(ha.count(), hc.count(), "case {case}");
        assert_eq!(ha.sum(), hc.sum(), "case {case}");
        assert_eq!(ha.min(), hc.min(), "case {case}");
        assert_eq!(ha.max(), hc.max(), "case {case}");
    }
}

/// Percentiles are monotone in p.
#[test]
fn percentiles_monotone() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0006);
    for case in 0..CASES {
        let xs = u64_vec(&mut rng, 1..256, 1_000_000);
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!(v >= last, "case {case}: p{p}: {v} < {last}");
            last = v;
        }
    }
}

/// Summary agrees with the standalone functions.
#[test]
fn summary_consistent() {
    let mut rng = SimRng::seed_from_u64(0x51A7_0007);
    for case in 0..CASES {
        let xs = f64_vec(&mut rng, 1..64, 0.01, 1e5);
        let s = Summary::of(&xs);
        assert_eq!(s.n, xs.len(), "case {case}");
        assert!(
            (s.mean - amean(&xs)).abs() < 1e-9 * amean(&xs).max(1.0),
            "case {case}"
        );
        assert_eq!(s.min, min_f64(&xs).unwrap(), "case {case}");
        assert_eq!(s.max, max_f64(&xs).unwrap(), "case {case}");
    }
}
