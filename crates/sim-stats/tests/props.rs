//! Property-based tests for the statistics primitives.

use proptest::prelude::*;
use sim_stats::{amean, gmean, hmean, max_f64, min_f64, Histogram, Summary};

proptest! {
    /// The classic mean inequality chain holds for any positive series.
    #[test]
    fn am_gm_hm_inequality(xs in prop::collection::vec(0.001f64..1e6, 1..64)) {
        let h = hmean(&xs);
        let g = gmean(&xs);
        let a = amean(&xs);
        prop_assert!(h <= g * (1.0 + 1e-9), "HM {h} > GM {g}");
        prop_assert!(g <= a * (1.0 + 1e-9), "GM {g} > AM {a}");
    }

    /// All means lie between min and max.
    #[test]
    fn means_bounded_by_extremes(xs in prop::collection::vec(0.001f64..1e6, 1..64)) {
        let lo = min_f64(&xs).unwrap();
        let hi = max_f64(&xs).unwrap();
        for m in [hmean(&xs), gmean(&xs), amean(&xs)] {
            prop_assert!(m >= lo * (1.0 - 1e-9) && m <= hi * (1.0 + 1e-9));
        }
    }

    /// Scaling the series scales every mean linearly.
    #[test]
    fn means_are_homogeneous(xs in prop::collection::vec(0.01f64..1e4, 1..32), k in 0.01f64..100.0) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        prop_assert!((amean(&scaled) - k * amean(&xs)).abs() < 1e-6 * k * amean(&xs).max(1.0));
        prop_assert!((hmean(&scaled) - k * hmean(&xs)).abs() < 1e-6 * k * hmean(&xs).max(1.0));
    }

    /// Histogram count/sum/min/max are exact regardless of bucketing.
    #[test]
    fn histogram_exact_aggregates(xs in prop::collection::vec(0u64..1_000_000, 1..256)) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        prop_assert_eq!(h.count(), xs.len() as u64);
        prop_assert_eq!(h.sum(), xs.iter().sum::<u64>());
        prop_assert_eq!(h.min(), xs.iter().min().copied());
        prop_assert_eq!(h.max(), xs.iter().max().copied());
        // Bucket counts add up.
        let bucketed: u64 = h.nonempty_buckets().map(|(_, _, n)| n).sum();
        prop_assert_eq!(bucketed, xs.len() as u64);
    }

    /// Merging two histograms equals recording the concatenation.
    #[test]
    fn histogram_merge_is_concat(
        a in prop::collection::vec(0u64..100_000, 0..128),
        b in prop::collection::vec(0u64..100_000, 0..128),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &x in &a { ha.record(x); hc.record(x); }
        for &x in &b { hb.record(x); hc.record(x); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.sum(), hc.sum());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(xs in prop::collection::vec(0u64..1_000_000, 1..256)) {
        let mut h = Histogram::new();
        for &x in &xs { h.record(x); }
        let mut last = 0;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= last, "p{p}: {v} < {last}");
            last = v;
        }
    }

    /// Summary agrees with the standalone functions.
    #[test]
    fn summary_consistent(xs in prop::collection::vec(0.01f64..1e5, 1..64)) {
        let s = Summary::of(&xs);
        prop_assert_eq!(s.n, xs.len());
        prop_assert!((s.mean - amean(&xs)).abs() < 1e-9 * amean(&xs).max(1.0));
        prop_assert_eq!(s.min, min_f64(&xs).unwrap());
        prop_assert_eq!(s.max, max_f64(&xs).unwrap());
    }
}
