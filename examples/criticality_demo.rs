//! Watch the Criticality Predictor Table learn (paper §IV.A/§IV.B).
//!
//! Runs two contrasting applications alone — `mcf` (isolated,
//! dependence-bound misses: critical) and `lbm` (deeply overlapped
//! streaming misses: non-critical) — with a CPT observing every load, and
//! prints what the predictor learned: the prediction mix, its accuracy
//! against the ROB-head ground truth, and how criticality splits the
//! fetched cache blocks.
//!
//! Run with:
//! ```text
//! cargo run --release --example criticality_demo
//! ```

use renuca::experiments::runner::run_single_app_with_cpt;
use renuca::prelude::*;

fn main() {
    let budget = Budget {
        warmup: 50_000,
        measure: 400_000,
    };

    println!("Criticality threshold x = 3% (the paper's choice)\n");
    for name in ["mcf", "lbm", "omnetpp", "povray"] {
        let spec = app_by_name(name).expect("app in table");
        let r = run_single_app_with_cpt(spec, CptConfig::default(), budget);
        let c = &r.per_core[0];
        let cs = c.core_stats;
        let pred = c.predictor;
        let total_pred = pred.predicted_critical + pred.predicted_noncritical;
        let h = r.hierarchy;

        println!("{name}:");
        println!(
            "  loads: {} committed, {:.1}% never blocked the ROB head",
            cs.loads_committed.get(),
            cs.noncritical_load_fraction() * 100.0
        );
        println!(
            "  CPT predictions: {:.1}% critical ({} of {})",
            pred.predicted_critical as f64 * 100.0 / total_pred.max(1) as f64,
            pred.predicted_critical,
            total_pred
        );
        println!(
            "  accuracy: recall of critical loads {:.1}%, overall {:.1}%",
            cs.critical_recall() * 100.0,
            cs.prediction_accuracy() * 100.0
        );
        println!(
            "  fetched blocks predicted non-critical: {:.1}%  (these spread via S-NUCA)",
            h.l3_fills_noncritical.get() as f64 * 100.0 / h.l3_fills.get().max(1) as f64
        );
        println!(
            "  L3 writes attributed to non-critical blocks: {:.1}%\n",
            h.l3_writes_noncritical.get() as f64 * 100.0 / h.l3_writes.get().max(1) as f64
        );
    }

    println!("Expected shape: mcf's isolated misses are critical (low");
    println!("non-critical shares); lbm's overlapped stream is almost entirely");
    println!("non-critical — the write traffic Re-NUCA can spread for free.");
}
