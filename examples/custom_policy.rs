//! Extending the library: implement and evaluate your own LLC placement
//! policy against the paper's baselines.
//!
//! The substrate is policy-agnostic — anything implementing
//! [`LlcPlacement`] plugs into the full simulator. This example builds a
//! **checkerboard** policy (each core spreads its lines over the 8 banks of
//! its mesh "colour", halfway between S-NUCA's 16 and R-NUCA's 4) and
//! compares it with S-NUCA and R-NUCA on workload WL3.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_policy
//! ```

use renuca::prelude::*;
use renuca::sim::placement::{AccessMeta, LlcPlacement};
use renuca::sim::types::{owner_of_line, BankId};

/// Spread each core's lines over the 8 banks sharing its checkerboard
/// colour: more spreading than R-NUCA (wear), more locality than S-NUCA.
struct Checkerboard {
    n_cores: usize,
    cols: usize,
}

impl Checkerboard {
    fn new(cfg: &SystemConfig) -> Self {
        Checkerboard {
            n_cores: cfg.n_cores,
            cols: cfg.noc.cols,
        }
    }

    fn bank_of(&self, line: u64) -> BankId {
        let core = owner_of_line(line) & (self.n_cores - 1);
        let colour = (core % self.cols + core / self.cols) % 2;
        // The 8 banks of this colour, indexed by 3 address bits.
        let index = (line % 8) as usize;
        // Enumerate same-colour tiles deterministically.
        let mut seen = 0;
        for bank in 0..self.n_cores {
            let c = (bank % self.cols + bank / self.cols) % 2;
            if c == colour {
                if seen == index {
                    return bank;
                }
                seen += 1;
            }
        }
        unreachable!("8 banks per colour on a 4x4 mesh")
    }
}

impl LlcPlacement for Checkerboard {
    fn name(&self) -> &'static str {
        "Checkerboard"
    }
    fn lookup_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(meta.line)
    }
    fn fill_bank(&mut self, meta: &AccessMeta) -> BankId {
        self.bank_of(meta.line)
    }
}

fn run_scheme(
    cfg: &SystemConfig,
    name: &str,
    policy: Box<dyn LlcPlacement>,
    predictors: Vec<Box<dyn renuca::sim::CriticalityPredictor>>,
) {
    let wl = workload_mix(3, cfg.n_cores);
    let mut sys = System::new(*cfg, policy, wl.build_sources(), predictors);
    sys.prewarm();
    sys.warmup(60_000);
    sys.run(120_000);
    let r = sys.result();
    let model = LifetimeModel::default();
    let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
    let min = lifetimes.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "{name:12}  ipc={:6.2}  min-lifetime={min:6.1}y  wear-CV={:.3}",
        r.total_ipc(),
        renuca::wear::lifetime_variation(&lifetimes)
    );
}

fn main() {
    let cfg = SystemConfig::default();
    println!("WL3 under three placements:\n");
    run_scheme(
        &cfg,
        "S-NUCA",
        Scheme::SNuca.build_policy(&cfg),
        Scheme::SNuca.build_predictors(&cfg, CptConfig::default()),
    );
    run_scheme(
        &cfg,
        "R-NUCA",
        Scheme::RNuca.build_policy(&cfg),
        Scheme::RNuca.build_predictors(&cfg, CptConfig::default()),
    );
    run_scheme(
        &cfg,
        "Checkerboard",
        Box::new(Checkerboard::new(&cfg)),
        Scheme::SNuca.build_predictors(&cfg, CptConfig::default()),
    );
    println!("\nA custom policy slots straight into the simulator: implement");
    println!("LlcPlacement (and optionally CriticalityPredictor) and compare.");
}
