//! The paper's motivating scenario, §III: a write-hammering program (mcf)
//! runs next to quiet neighbours. Under dynamic placement its local banks
//! wear out years before the rest of the cache; Re-NUCA spreads the
//! non-critical writes while keeping critical lines close.
//!
//! This example pins `mcf` and `streamL` onto two cores of a 16-core
//! machine, fills the rest with low-intensity `povray`, and compares the
//! per-bank write distribution and minimum lifetime across all five
//! schemes.
//!
//! Run with:
//! ```text
//! cargo run --release --example wear_leveling_comparison
//! ```

use renuca::prelude::*;
use renuca::sim::instr::InstrSource;

fn build_sources(cfg: &SystemConfig) -> Vec<Box<dyn InstrSource>> {
    let mcf = *app_by_name("mcf").expect("mcf in table");
    let stream = *app_by_name("streamL").expect("streamL in table");
    let quiet = *app_by_name("povray").expect("povray in table");
    (0..cfg.n_cores)
        .map(|core| {
            let spec = match core {
                5 => mcf, // center-ish tile: its R-NUCA cluster is visible
                10 => stream,
                _ => quiet,
            };
            Box::new(AppModel::new(spec, 42 + core as u64)) as Box<dyn InstrSource>
        })
        .collect()
}

fn main() {
    let cfg = SystemConfig::default();
    let model = LifetimeModel::default();

    println!("Two write-intensive programs (mcf on core 5, streamL on core 10)");
    println!("among quiet neighbours — per-bank writes by scheme:\n");

    for scheme in Scheme::ALL {
        let mut sys = System::new(
            cfg,
            scheme.build_policy(&cfg),
            build_sources(&cfg),
            scheme.build_predictors(&cfg, CptConfig::default()),
        );
        sys.prewarm();
        sys.warmup(60_000);
        sys.run(120_000);
        let r = sys.result();

        let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
        let min_life = lifetimes.iter().cloned().fold(f64::INFINITY, f64::min);
        let total: u64 = r.bank_writes.iter().sum();
        let max_share =
            *r.bank_writes.iter().max().unwrap_or(&0) as f64 / total.max(1) as f64 * 100.0;

        println!(
            "{:8}  ipc={:6.2}  min-lifetime={:6.1}y  hottest bank takes {:4.1}% of writes",
            scheme.name(),
            r.total_ipc(),
            min_life,
            max_share
        );
        print!("          writes:");
        for w in &r.bank_writes {
            print!(" {:6}", w);
        }
        println!("\n");
    }

    println!("Expected shape (paper §III + §V): Private/R-NUCA concentrate");
    println!("writes near the hot cores; S-NUCA and Naive spread them; Re-NUCA");
    println!("spreads the non-critical majority while keeping IPC near R-NUCA.");
}
