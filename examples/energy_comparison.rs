//! The paper's §I motivation, quantified: SRAM vs ReRAM L3 energy for the
//! same simulated workload.
//!
//! Large SRAM LLCs burn most of their power standing by ("standby power is
//! up to 80% of their total power"); ReRAM flips the balance — near-zero
//! leakage, expensive writes. This example runs WL1 once, then prices the
//! same access stream under both technologies.
//!
//! Run with:
//! ```text
//! cargo run --release --example energy_comparison
//! ```

use renuca::prelude::*;
use renuca::wear::{EnergyBreakdown, EnergyModel};

fn main() {
    let cfg = SystemConfig::default();
    let wl = workload_mix(1, cfg.n_cores);
    let scheme = Scheme::ReNuca;
    let mut sys = System::new(
        cfg,
        scheme.build_policy(&cfg),
        wl.build_sources(),
        scheme.build_predictors(&cfg, CptConfig::default()),
    );
    sys.prewarm();
    sys.warmup(100_000);
    sys.run(200_000);
    let r = sys.result();

    // L3 traffic of the measured window.
    let writes = r.hierarchy.l3_writes.get();
    let reads: u64 = r
        .per_core
        .iter()
        .map(|c| c.mem_stats.l3_accesses)
        .sum::<u64>();
    let seconds = r.cycles as f64 / cfg.freq_hz;
    let capacity_mb = (cfg.n_banks as u64 * cfg.l3_bank.size_bytes) as f64 / (1024.0 * 1024.0);

    println!(
        "WL1 under {}: {} L3 reads, {} L3 writes over {:.3} ms of execution\n",
        r.scheme,
        reads,
        writes,
        seconds * 1e3
    );
    println!(
        "{:6} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "tech", "read [mJ]", "write [mJ]", "standby[mJ]", "total [mJ]", "standby%"
    );
    for model in [EnergyModel::SRAM, EnergyModel::RERAM] {
        let e: EnergyBreakdown = model.energy_mj(reads, writes, seconds, capacity_mb);
        println!(
            "{:6} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>8.1}%",
            model.name,
            e.read_mj,
            e.write_mj,
            e.standby_mj,
            e.total_mj(),
            e.standby_fraction() * 100.0
        );
    }
    println!("\nThe paper's premise: the SRAM column is standby-dominated, the");
    println!("ReRAM column is not — and ReRAM's expensive writes are exactly");
    println!("why their *placement* (and the endurance they drain) matters.");
}
