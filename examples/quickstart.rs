//! Quickstart: simulate the paper's 16-core machine running workload mix
//! WL1 under Re-NUCA, and print the numbers the paper cares about —
//! throughput, per-bank write distribution and projected bank lifetimes.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use renuca::prelude::*;

fn main() {
    // The paper's Table I machine: 16 OoO cores @ 2.4 GHz, 32 KB L1 /
    // 256 KB L2 per core, 16 x 2 MB ReRAM L3 banks on a 4x4 mesh, DDR3.
    let cfg = SystemConfig::default();

    // WL1: a deterministic 16-application mix of high/medium/low
    // write-intensive SPEC-like programs.
    let wl = workload_mix(1, cfg.n_cores);
    println!("Workload WL1:");
    for (core, app) in wl.apps.iter().enumerate() {
        println!("  core {core:2}  {}", app.name);
    }

    // Build the Re-NUCA system: hybrid placement + per-core CPTs.
    let scheme = Scheme::ReNuca;
    let mut sys = System::new(
        cfg,
        scheme.build_policy(&cfg),
        wl.build_sources(),
        scheme.build_predictors(&cfg, CptConfig::default()),
    );

    // Warm the caches (checkpoint-style prewarm + timed warm-up), then
    // measure.
    sys.prewarm();
    sys.warmup(100_000);
    sys.run(100_000);
    let result = sys.result();

    println!("\nScheme: {}", result.scheme);
    println!("Measured window: {} cycles", result.cycles);
    println!("System throughput: {:.2} IPC", result.total_ipc());
    println!(
        "Average MPKI: {:.2}, average WPKI: {:.2}",
        result.avg_mpki(),
        result.avg_wpki()
    );

    println!("\nPer-bank L3 writes (the quantity Re-NUCA wear-levels):");
    for (bank, writes) in result.bank_writes.iter().enumerate() {
        println!("  bank {bank:2}  {writes:8} writes");
    }

    // Project lifetimes at the paper's endurance (1e11 writes/line).
    let model = LifetimeModel::default();
    let lifetimes = model.all_bank_lifetimes(&result.wear, result.cycles);
    let min = lifetimes.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nProjected bank lifetimes (years): min {min:.1}");
    println!(
        "Wear variation (CV): {:.3}",
        renuca::wear::lifetime_variation(&lifetimes)
    );
}
