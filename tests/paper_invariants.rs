//! The paper's qualitative claims, asserted end-to-end at reduced scale.
//!
//! These are the *shape* properties the reproduction must preserve (margins
//! are deliberately generous — exact factors are measured by the benchmark
//! harness, not asserted here):
//!
//! * S-NUCA and the Naive oracle wear-level (low variation);
//! * R-NUCA and Private concentrate writes (high variation);
//! * Re-NUCA wear-levels better than R-NUCA and its minimum lifetime beats
//!   R-NUCA's (the +42% headline);
//! * the Naive oracle pays for its directory with performance;
//! * Re-NUCA's throughput stays close to R-NUCA's.

use renuca::prelude::*;
use renuca::wear::lifetime_variation;

struct Outcome {
    ipc: f64,
    variation: f64,
    min_lifetime: f64,
}

fn run(scheme: Scheme) -> Outcome {
    // The full 16-core machine, one representative workload, short window.
    // The paper's published numbers come from a flat 100-cycle L3 bank
    // (Table I, gem5 classic), so the shape claims are asserted on that
    // machine: `with_symmetric_llc` maps the per-bank service model back
    // to it exactly. The asymmetric ReRAM default is exercised by the
    // write-burst saturation scenario (EXPERIMENTS.md) instead — under
    // bank write-occupancy the schemes trade differently, which is the
    // point of that study.
    let cfg = SystemConfig::default().with_symmetric_llc();
    let wl = workload_mix(1, cfg.n_cores);
    let mut sys = System::new(
        cfg,
        scheme.build_policy(&cfg),
        wl.build_sources(),
        scheme.build_predictors(&cfg, CptConfig::default()),
    );
    sys.prewarm();
    sys.warmup(40_000);
    sys.run(40_000);
    let r = sys.result();
    let model = LifetimeModel::default();
    let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
    Outcome {
        ipc: r.total_ipc(),
        variation: lifetime_variation(&lifetimes),
        min_lifetime: lifetimes.iter().cloned().fold(f64::INFINITY, f64::min),
    }
}

#[test]
fn wear_leveling_and_performance_shape() {
    let naive = run(Scheme::Naive);
    let snuca = run(Scheme::SNuca);
    let renuca = run(Scheme::ReNuca);
    let rnuca = run(Scheme::RNuca);
    let private = run(Scheme::Private);

    // --- Wear-leveling ordering (Figures 3 and 12) ---
    assert!(
        naive.variation < 0.1,
        "Naive must level near-perfectly, CV={}",
        naive.variation
    );
    assert!(
        snuca.variation < 0.1,
        "S-NUCA must level, CV={}",
        snuca.variation
    );
    assert!(
        rnuca.variation > 0.5,
        "R-NUCA must concentrate writes, CV={}",
        rnuca.variation
    );
    assert!(
        private.variation > 0.5,
        "Private must concentrate writes, CV={}",
        private.variation
    );
    assert!(
        renuca.variation < rnuca.variation,
        "Re-NUCA ({}) must wear-level better than R-NUCA ({})",
        renuca.variation,
        rnuca.variation
    );

    // --- The headline: minimum lifetime (Table III ordering) ---
    assert!(
        renuca.min_lifetime > rnuca.min_lifetime,
        "Re-NUCA min lifetime ({:.2}y) must beat R-NUCA ({:.2}y)",
        renuca.min_lifetime,
        rnuca.min_lifetime
    );
    assert!(
        naive.min_lifetime >= renuca.min_lifetime * 0.9,
        "the oracle must (about) dominate everyone"
    );

    // --- Performance (Figure 11 / §V.B) ---
    assert!(
        naive.ipc < snuca.ipc,
        "Naive ({:.2}) must pay for its directory vs S-NUCA ({:.2})",
        naive.ipc,
        snuca.ipc
    );
    assert!(
        renuca.ipc > rnuca.ipc * 0.93,
        "Re-NUCA ({:.2}) must stay close to R-NUCA ({:.2})",
        renuca.ipc,
        rnuca.ipc
    );
    assert!(
        renuca.ipc > naive.ipc,
        "Re-NUCA must clearly beat the oracle on performance"
    );
}

#[test]
fn criticality_predictor_separates_app_classes() {
    // lbm (streaming) must classify far more of its fetched blocks
    // non-critical than mcf's chase-heavy stream at the paper's threshold.
    use renuca::experiments::runner::run_single_app_with_cpt;
    let budget = Budget {
        warmup: 30_000,
        measure: 120_000,
    };
    let pct_noncrit = |name: &str| {
        let spec = app_by_name(name).unwrap();
        let r = run_single_app_with_cpt(spec, CptConfig::default(), budget);
        let h = r.hierarchy;
        h.l3_fills_noncritical.get() as f64 * 100.0 / h.l3_fills.get().max(1) as f64
    };
    let lbm = pct_noncrit("lbm");
    let mcf = pct_noncrit("mcf");
    assert!(
        lbm > 55.0,
        "lbm's stream must be mostly non-critical: {lbm:.1}%"
    );
    assert!(
        mcf < lbm,
        "mcf ({mcf:.1}%) must be more critical than lbm ({lbm:.1}%)"
    );
}

#[test]
fn table2_intensity_classes_reproduce() {
    use renuca::experiments::figures::table2;
    use renuca::workloads::WriteIntensity;
    let rows = table2::run(Budget {
        warmup: 40_000,
        measure: 150_000,
    });
    // Spot-check the anchors of each class.
    let get = |name: &str| rows.iter().find(|r| r.name == name).unwrap();
    assert_eq!(get("mcf").intensity(), WriteIntensity::High);
    assert_eq!(get("streamL").intensity(), WriteIntensity::High);
    assert_eq!(get("povray").intensity(), WriteIntensity::Low);
    assert_eq!(get("GemsFDTD").intensity(), WriteIntensity::Low);
    // Most classes must match the paper's. Boundary apps (e.g. omnetpp,
    // whose WPKI needs several full L2 churns to reach steady state) may
    // drop a class at this reduced test budget.
    let matches = rows
        .iter()
        .filter(|r| r.intensity() == r.paper_intensity())
        .count();
    assert!(
        matches >= 17,
        "only {matches}/22 intensity classes match Table II"
    );
}
