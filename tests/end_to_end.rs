//! Cross-crate integration: full-system runs under every scheme, checking
//! the accounting invariants that tie the substrate, the policies and the
//! wear model together.

use renuca::prelude::*;

fn run_scheme(scheme: Scheme, cfg: SystemConfig, wl_id: usize, instr: u64) -> SimResult {
    let wl = workload_mix(wl_id, cfg.n_cores);
    let mut sys = System::new(
        cfg,
        scheme.build_policy(&cfg),
        wl.build_sources(),
        scheme.build_predictors(&cfg, CptConfig::default()),
    );
    sys.prewarm();
    sys.warmup(instr / 4);
    sys.run(instr);
    sys.result()
}

#[test]
fn every_scheme_completes_and_accounts_writes() {
    let cfg = SystemConfig::small(4);
    for scheme in Scheme::ALL {
        let r = run_scheme(scheme, cfg, 1, 20_000);
        assert_eq!(r.scheme, scheme.name());
        // Every core committed its budget.
        for c in &r.per_core {
            assert_eq!(c.committed, 20_000, "{}/{}", scheme.name(), c.label);
            assert!(c.ipc > 0.0 && c.ipc <= cfg.commit_width as f64);
        }
        // The wear tracker and the hierarchy agree on every L3 write.
        assert_eq!(
            r.wear.total_writes(),
            r.hierarchy.l3_writes.get(),
            "{}: wear vs hierarchy write accounting",
            scheme.name()
        );
        // Writes decompose into fills + writebacks.
        let fills = r.hierarchy.l3_fills.get();
        assert!(fills <= r.hierarchy.l3_writes.get());
        // Bank totals sum to the global total.
        assert_eq!(
            r.bank_writes.iter().sum::<u64>(),
            r.wear.total_writes(),
            "{}: bank totals",
            scheme.name()
        );
    }
}

#[test]
fn simulation_is_deterministic() {
    let cfg = SystemConfig::small(4);
    let a = run_scheme(Scheme::ReNuca, cfg, 2, 15_000);
    let b = run_scheme(Scheme::ReNuca, cfg, 2, 15_000);
    assert_eq!(a.cycles, b.cycles, "cycle counts must be identical");
    assert_eq!(a.bank_writes, b.bank_writes, "wear must be identical");
    for (x, y) in a.per_core.iter().zip(b.per_core.iter()) {
        assert_eq!(x.committed, y.committed);
        assert_eq!(x.mem_stats.l3_misses, y.mem_stats.l3_misses);
        assert_eq!(x.mem_stats.l2_writebacks, y.mem_stats.l2_writebacks);
    }
}

#[test]
fn different_workloads_differ() {
    let cfg = SystemConfig::small(4);
    let a = run_scheme(Scheme::SNuca, cfg, 1, 15_000);
    let b = run_scheme(Scheme::SNuca, cfg, 2, 15_000);
    assert_ne!(
        a.bank_writes, b.bank_writes,
        "distinct workloads must produce distinct wear"
    );
}

#[test]
fn lifetime_extrapolation_is_consistent_with_wear() {
    let cfg = SystemConfig::small(4);
    let r = run_scheme(Scheme::Private, cfg, 1, 20_000);
    let model = LifetimeModel::default();
    let lifetimes = model.all_bank_lifetimes(&r.wear, r.cycles);
    assert_eq!(lifetimes.len(), cfg.n_banks);
    // More-written banks must have shorter (or equal, if capped) lifetimes.
    for i in 0..cfg.n_banks {
        for j in 0..cfg.n_banks {
            if r.bank_writes[i] > r.bank_writes[j] && lifetimes[j] < model.cap_years {
                assert!(
                    lifetimes[i] <= lifetimes[j] + 1e-9,
                    "bank {i} ({} writes, {:.2}y) vs bank {j} ({} writes, {:.2}y)",
                    r.bank_writes[i],
                    lifetimes[i],
                    r.bank_writes[j],
                    lifetimes[j]
                );
            }
        }
    }
}

#[test]
fn warmup_separates_measurement_from_cold_start() {
    let cfg = SystemConfig::small(4);
    let wl = workload_mix(1, cfg.n_cores);
    let mut sys = System::new(
        cfg,
        Scheme::SNuca.build_policy(&cfg),
        wl.build_sources(),
        Scheme::SNuca.build_predictors(&cfg, CptConfig::default()),
    );
    sys.prewarm();
    sys.warmup(10_000);
    // After the warm-up reset, no writes are recorded yet.
    assert_eq!(sys.mem.wear.total_writes(), 0);
    sys.run(10_000);
    let r = sys.result();
    assert!(r.wear.total_writes() > 0, "measurement must record wear");
    assert!(r.cycles > 0);
}

#[test]
fn sixteen_core_paper_machine_smoke() {
    // One short run on the real Table I machine exercises the 4x4 mesh,
    // all 16 banks and the full workload mix.
    let cfg = SystemConfig::default();
    let r = run_scheme(Scheme::ReNuca, cfg, 1, 5_000);
    assert_eq!(r.per_core.len(), 16);
    assert_eq!(r.bank_writes.len(), 16);
    assert!(r.total_ipc() > 1.0);
}
