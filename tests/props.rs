//! Property-based tests over the core data structures, spanning crates.

use proptest::prelude::*;

use renuca::core_policies::{Cpt, CptConfig, ReNuca, SNuca, Scheme};
use renuca::sim::cache::{LookupResult, SetAssocCache};
use renuca::sim::config::{CacheGeometry, SystemConfig};
use renuca::sim::placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
use renuca::sim::reserve::{gc, reserve, Calendar};
use renuca::sim::types::{page_of_line, phys_addr};
use renuca::wear::WearTracker;

fn meta_for(line: u64) -> AccessMeta {
    AccessMeta {
        core: 0,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A cache never exceeds its capacity, never duplicates a line, and a
    /// filled line is immediately found until evicted.
    #[test]
    fn cache_capacity_and_uniqueness(ops in prop::collection::vec((0u64..512, any::<bool>()), 1..400)) {
        let geo = CacheGeometry { size_bytes: 4096, assoc: 4, latency: 1 }; // 64 lines
        let mut cache = SetAssocCache::new(geo, false);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (line, is_write) in ops {
            match cache.access(line, is_write) {
                LookupResult::Hit { .. } => {
                    prop_assert!(resident.contains(&line), "hit on non-resident {line}");
                }
                LookupResult::Miss => {
                    let out = cache.fill(line, is_write);
                    resident.insert(line);
                    if let Some(ev) = out.evicted {
                        prop_assert!(resident.remove(&ev.line), "evicted ghost {:#x}", ev.line);
                    }
                    let found = matches!(cache.probe(line), LookupResult::Hit { .. });
                    prop_assert!(found, "freshly filled line not found");
                }
            }
            prop_assert!(cache.occupancy() <= 64);
            prop_assert_eq!(cache.occupancy(), resident.len());
        }
    }

    /// Calendar reservations never overlap, are granted at or after the
    /// request, and GC never disturbs future reservations.
    #[test]
    fn calendar_reservations_sound(reqs in prop::collection::vec((0u64..5_000, 1u64..50), 1..300)) {
        let mut cal = Calendar::new();
        for (now, hold) in reqs {
            let t = reserve(&mut cal, now, hold);
            prop_assert!(t >= now);
            for w in cal.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap {:?} {:?}", w[0], w[1]);
            }
        }
        let before: u64 = cal.iter().map(|&(s, e)| e - s).sum();
        gc(&mut cal, 2_500);
        // GC only removes fully-expired intervals.
        for &(_, end) in cal.iter() {
            prop_assert!(end >= 2_500);
        }
        let after: u64 = cal.iter().map(|&(s, e)| e - s).sum();
        prop_assert!(after <= before);
    }

    /// Every placement policy maps every line to a valid bank, and static
    /// schemes agree between lookup and fill.
    #[test]
    fn placements_stay_in_range(lines in prop::collection::vec(any::<u64>(), 1..100)) {
        let cfg = SystemConfig::small(16);
        for scheme in Scheme::ALL {
            let mut policy = scheme.build_policy(&cfg);
            for &raw in &lines {
                let line = raw >> 8; // keep owner bits in range after masking
                let m = meta_for(line);
                let lb = policy.lookup_bank(&m);
                let fb = policy.fill_bank(&m);
                prop_assert!(lb < cfg.n_banks, "{}: lookup {lb}", scheme.name());
                prop_assert!(fb < cfg.n_banks, "{}: fill {fb}", scheme.name());
                if matches!(scheme, Scheme::SNuca | Scheme::RNuca | Scheme::Private) {
                    prop_assert_eq!(lb, fb, "static scheme must agree");
                }
            }
        }
    }

    /// Re-NUCA routing is exactly determined by the MBV bit: after a fill,
    /// lookups go to the fill bank; after eviction they return to S-NUCA.
    #[test]
    fn renuca_mbv_routing_roundtrip(
        offsets in prop::collection::vec(0u64..1_000_000, 1..50),
        critical in prop::collection::vec(any::<bool>(), 50),
    ) {
        let mut renuca = ReNuca::new(4, 4);
        let snuca = SNuca::new(16);
        for (i, &off) in offsets.iter().enumerate() {
            let line = phys_addr(i % 16, off * 64) >> 6;
            let is_crit = critical[i % critical.len()];
            let mut m = meta_for(line);
            m.predicted_critical = is_crit;
            let fill = renuca.fill_bank(&m);
            renuca.on_fill(&m, fill);
            prop_assert_eq!(renuca.lookup_bank(&m), fill, "resident routing");
            renuca.on_evict(line, fill);
            prop_assert_eq!(
                renuca.lookup_bank(&m),
                snuca.bank_of(line),
                "post-eviction routing must be S-NUCA"
            );
        }
    }

    /// The CPT's criticality set shrinks (weakly) as the threshold rises.
    #[test]
    fn cpt_threshold_monotonicity(
        block_pattern in prop::collection::vec(any::<bool>(), 20..200),
    ) {
        let pc = 0x40;
        let mut verdicts = Vec::new();
        for &x in &[3.0, 25.0, 75.0] {
            let mut cpt = Cpt::new(CptConfig::with_threshold(x));
            for &blocked in &block_pattern {
                cpt.predict(pc);
                if blocked {
                    cpt.on_rob_block(pc);
                }
                cpt.on_load_commit(pc, blocked);
            }
            verdicts.push(cpt.predict(pc));
        }
        // critical@75% implies critical@25% implies critical@3%.
        prop_assert!(!verdicts[2] || verdicts[1]);
        prop_assert!(!verdicts[1] || verdicts[0]);
    }

    /// Wear-tracker totals always equal the sum over slots, and merging is
    /// additive.
    #[test]
    fn wear_totals_consistent(writes in prop::collection::vec((0usize..4, 0usize..8), 0..300)) {
        let mut a = WearTracker::new(4, 8);
        let mut b = WearTracker::new(4, 8);
        for (i, &(bank, slot)) in writes.iter().enumerate() {
            if i % 2 == 0 { a.record_write(bank, slot) } else { b.record_write(bank, slot) }
        }
        let total = a.total_writes() + b.total_writes();
        prop_assert_eq!(total as usize, writes.len());
        a.merge(&b);
        prop_assert_eq!(a.total_writes() as usize, writes.len());
        for bank in 0..4 {
            let slot_sum: u64 = (0..8).map(|s| a.slot_writes(bank, s)).sum();
            prop_assert_eq!(slot_sum, a.bank_writes(bank));
        }
    }
}
