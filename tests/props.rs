//! Property-based tests over the core data structures, spanning crates,
//! driven by seeded `sim-rng` generator loops (hermetic replacement for
//! proptest — the cases are deterministic, so a failure reproduces on
//! every run).

use sim_rng::SimRng;

use renuca::core_policies::{Cpt, CptConfig, ReNuca, SNuca, Scheme};
use renuca::sim::cache::{LookupResult, SetAssocCache};
use renuca::sim::config::{CacheGeometry, SystemConfig};
use renuca::sim::placement::{AccessMeta, CriticalityPredictor, LlcAccessKind, LlcPlacement};
use renuca::sim::reserve::{gc, reserve, Calendar};
use renuca::sim::types::{page_of_line, phys_addr};
use renuca::wear::WearTracker;

const CASES: usize = 64;

fn meta_for(line: u64) -> AccessMeta {
    AccessMeta {
        core: 0,
        line,
        page: page_of_line(line),
        pc: 1,
        kind: LlcAccessKind::Demand,
        predicted_critical: false,
    }
}

/// A cache never exceeds its capacity, never duplicates a line, and a
/// filled line is immediately found until evicted.
#[test]
fn cache_capacity_and_uniqueness() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0001);
    for case in 0..CASES {
        let n_ops = rng.gen_range_usize(1..400);
        let ops: Vec<(u64, bool)> = (0..n_ops)
            .map(|_| (rng.gen_bounded(512), rng.gen_bool(0.5)))
            .collect();
        let geo = CacheGeometry::symmetric(4096, 4, 1); // 64 lines
        let mut cache = SetAssocCache::new(geo, false);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for (line, is_write) in ops {
            match cache.access(line, is_write) {
                LookupResult::Hit { .. } => {
                    assert!(
                        resident.contains(&line),
                        "case {case}: hit on non-resident {line}"
                    );
                }
                LookupResult::Miss => {
                    let out = cache.fill(line, is_write);
                    resident.insert(line);
                    if let Some(ev) = out.evicted {
                        assert!(
                            resident.remove(&ev.line),
                            "case {case}: evicted ghost {:#x}",
                            ev.line
                        );
                    }
                    let found = matches!(cache.probe(line), LookupResult::Hit { .. });
                    assert!(found, "case {case}: freshly filled line not found");
                }
            }
            assert!(cache.occupancy() <= 64, "case {case}");
            assert_eq!(cache.occupancy(), resident.len(), "case {case}");
        }
    }
}

/// Calendar reservations never overlap, are granted at or after the
/// request, and GC never disturbs future reservations.
#[test]
fn calendar_reservations_sound() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0002);
    for case in 0..CASES {
        let n_reqs = rng.gen_range_usize(1..300);
        let reqs: Vec<(u64, u64)> = (0..n_reqs)
            .map(|_| (rng.gen_bounded(5_000), rng.gen_range(1..50)))
            .collect();
        let mut cal = Calendar::new();
        for (now, hold) in reqs {
            let t = reserve(&mut cal, now, hold, 0);
            assert!(t >= now, "case {case}");
            for w in cal.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "case {case}: overlap {:?} {:?}",
                    w[0],
                    w[1]
                );
            }
        }
        let before: u64 = cal.iter().map(|&(s, e)| e - s).sum();
        gc(&mut cal, 2_500);
        // GC only removes fully-expired intervals.
        for &(_, end) in cal.iter() {
            assert!(end >= 2_500, "case {case}");
        }
        let after: u64 = cal.iter().map(|&(s, e)| e - s).sum();
        assert!(after <= before, "case {case}");
    }
}

/// Every placement policy maps every line to a valid bank, and static
/// schemes agree between lookup and fill.
#[test]
fn placements_stay_in_range() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0003);
    for case in 0..CASES {
        let n_lines = rng.gen_range_usize(1..100);
        let lines: Vec<u64> = (0..n_lines).map(|_| rng.next_u64()).collect();
        let cfg = SystemConfig::small(16);
        for scheme in Scheme::ALL {
            let mut policy = scheme.build_policy(&cfg);
            for &raw in &lines {
                let line = raw >> 8; // keep owner bits in range after masking
                let m = meta_for(line);
                let lb = policy.lookup_bank(&m);
                let fb = policy.fill_bank(&m);
                assert!(
                    lb < cfg.n_banks,
                    "case {case}: {}: lookup {lb}",
                    scheme.name()
                );
                assert!(
                    fb < cfg.n_banks,
                    "case {case}: {}: fill {fb}",
                    scheme.name()
                );
                if matches!(scheme, Scheme::SNuca | Scheme::RNuca | Scheme::Private) {
                    assert_eq!(lb, fb, "case {case}: static scheme must agree");
                }
            }
        }
    }
}

/// Re-NUCA routing is exactly determined by the MBV bit: after a fill,
/// lookups go to the fill bank; after eviction they return to S-NUCA.
#[test]
fn renuca_mbv_routing_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0004);
    for case in 0..CASES {
        let n_offsets = rng.gen_range_usize(1..50);
        let offsets: Vec<u64> = (0..n_offsets).map(|_| rng.gen_bounded(1_000_000)).collect();
        let critical: Vec<bool> = (0..50).map(|_| rng.gen_bool(0.5)).collect();
        let mut renuca = ReNuca::new(4, 4);
        let snuca = SNuca::new(16);
        for (i, &off) in offsets.iter().enumerate() {
            let line = phys_addr(i % 16, off * 64) >> 6;
            let is_crit = critical[i % critical.len()];
            let mut m = meta_for(line);
            m.predicted_critical = is_crit;
            let fill = renuca.fill_bank(&m);
            renuca.on_fill(&m, fill);
            assert_eq!(
                renuca.lookup_bank(&m),
                fill,
                "case {case}: resident routing"
            );
            renuca.on_evict(line, fill);
            assert_eq!(
                renuca.lookup_bank(&m),
                snuca.bank_of(line),
                "case {case}: post-eviction routing must be S-NUCA"
            );
        }
    }
}

/// The CPT's criticality set shrinks (weakly) as the threshold rises.
#[test]
fn cpt_threshold_monotonicity() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0005);
    for case in 0..CASES {
        let n = rng.gen_range_usize(20..200);
        let block_pattern: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let pc = 0x40;
        let mut verdicts = Vec::new();
        for &x in &[3.0, 25.0, 75.0] {
            let mut cpt = Cpt::new(CptConfig::with_threshold(x));
            for &blocked in &block_pattern {
                cpt.predict(pc);
                if blocked {
                    cpt.on_rob_block(pc);
                }
                cpt.on_load_commit(pc, blocked);
            }
            verdicts.push(cpt.predict(pc));
        }
        // critical@75% implies critical@25% implies critical@3%.
        assert!(!verdicts[2] || verdicts[1], "case {case}");
        assert!(!verdicts[1] || verdicts[0], "case {case}");
    }
}

/// Wear-tracker totals always equal the sum over slots, and merging is
/// additive.
#[test]
fn wear_totals_consistent() {
    let mut rng = SimRng::seed_from_u64(0xF00D_0006);
    for case in 0..CASES {
        let n_writes = rng.gen_range_usize(0..300);
        let writes: Vec<(usize, usize)> = (0..n_writes)
            .map(|_| (rng.gen_range_usize(0..4), rng.gen_range_usize(0..8)))
            .collect();
        let mut a = WearTracker::new(4, 8);
        let mut b = WearTracker::new(4, 8);
        for (i, &(bank, slot)) in writes.iter().enumerate() {
            if i % 2 == 0 {
                a.record_write(bank, slot)
            } else {
                b.record_write(bank, slot)
            }
        }
        let total = a.total_writes() + b.total_writes();
        assert_eq!(total as usize, writes.len(), "case {case}");
        a.merge(&b);
        assert_eq!(a.total_writes() as usize, writes.len(), "case {case}");
        for bank in 0..4 {
            let slot_sum: u64 = (0..8).map(|s| a.slot_writes(bank, s)).sum();
            assert_eq!(slot_sum, a.bank_writes(bank), "case {case}");
        }
    }
}
