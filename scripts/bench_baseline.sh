#!/usr/bin/env bash
# Produce a committed benchmark baseline (BENCH_<n>.json) from an in-tree
# bench target. Usage:
#
#   scripts/bench_baseline.sh [OUT.json] [BENCH_TARGET]
#
# Defaults to BENCH_5.json from the `micro` target with 50 samples per
# bench (override with RENUCA_BENCH_SAMPLES). The campaign scheduler
# baseline is
#
#   scripts/bench_baseline.sh BENCH_CAMPAIGN_1.json campaign_overhead
#
# See EXPERIMENTS.md "Benchmark baselines" for the schema and the
# comparison procedure.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${1:-BENCH_5.json}"
TARGET="${2:-micro}"
SAMPLES="${RENUCA_BENCH_SAMPLES:-50}"

# The harness prints one JSON object per bench on stdout; keep those lines
# and drop the human-readable header.
RAW="$(RENUCA_BENCH_SAMPLES="$SAMPLES" cargo bench -p bench --bench "$TARGET" 2>/dev/null \
    | grep '^{"bench"')"

{
    printf '{"schema":"renuca-bench-v1",'
    printf '"source":"cargo bench -p bench --bench %s",' "$TARGET"
    printf '"samples":%s,"results":[' "$SAMPLES"
    printf '%s\n' "$RAW" | awk 'NR>1{printf ","} {printf "%s", $0}'
    printf ']}\n'
} >"$OUT"

echo "wrote $OUT ($(printf '%s\n' "$RAW" | wc -l) benches, $SAMPLES samples each)"
