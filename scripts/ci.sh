#!/usr/bin/env bash
# CI gate for the renuca workspace. Everything here must pass offline —
# the workspace is hermetic (in-tree path crates only, see README).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== examples =="
cargo build --examples

echo "== bench targets compile =="
cargo build --benches --release --workspace

echo "== formatting =="
cargo fmt --check

echo "CI OK"
