#!/usr/bin/env bash
# CI gate for the renuca workspace. Everything here must pass offline —
# the workspace is hermetic (in-tree path crates only, see README).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== release binaries (member bins are not default targets of the root package) =="
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== differential smoke: bounded seeded corpus vs the golden model =="
# Fixed seeds, all five placement policies, pow2 and non-pow2 meshes
# (see TESTING.md). diffcheck exits non-zero on any divergence and
# writes the ddmin-shrunk reproducer under out/.
./target/release/diffcheck --quick --out out

echo "== examples =="
cargo build --examples

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== manifest smoke: --stats emits a schema-conformant run manifest =="
MANIFEST="$(mktemp)"
trap 'rm -f "$MANIFEST"' EXIT
RENUCA_WARMUP=500 RENUCA_MEASURE=2000 \
    ./target/release/fig3 --stats "$MANIFEST" >/dev/null 2>&1
# Top-level keys must appear in the documented order (EXPERIMENTS.md,
# "Observability: run manifests").
if ! grep -qE '^\{"schema":"renuca-manifest-v1","binary":"fig3","label":"[^"]+","version":"[^"]+","budget":\{"warmup":500,"measure":2000\},"config":\{.*\},"stats":\{.*\},"wear_heatmap":\{"unit":"years","rows":\[.*\]\}\}$' \
    "$MANIFEST"; then
    echo "manifest smoke FAILED: $MANIFEST does not match renuca-manifest-v1"
    head -c 400 "$MANIFEST"; echo
    exit 1
fi
echo "manifest smoke OK ($(wc -c < "$MANIFEST") bytes)"

echo "== bench targets compile =="
cargo build --benches --release --workspace

echo "== bench smoke: short run emits well-formed JSON lines =="
BENCH_OUT="$(RENUCA_BENCH_SAMPLES=2 cargo bench -p bench --bench micro 2>/dev/null \
    | grep '^{"bench"')"
BENCH_N="$(printf '%s\n' "$BENCH_OUT" | wc -l)"
BENCH_BAD="$(printf '%s\n' "$BENCH_OUT" | grep -cvE \
    '^\{"bench":"[^"]+","kind":"micro","samples":[0-9]+,"iters_per_sample":[0-9]+,"min_ns":[0-9.eE+-]+,"mean_ns":[0-9.eE+-]+,"median_ns":[0-9.eE+-]+,"p95_ns":[0-9.eE+-]+\}$' \
    || true)"
if [ "$BENCH_N" -lt 10 ] || [ "$BENCH_BAD" -ne 0 ]; then
    echo "bench smoke FAILED: $BENCH_N lines, $BENCH_BAD malformed"
    printf '%s\n' "$BENCH_OUT"
    exit 1
fi
echo "bench smoke OK ($BENCH_N benches)"

echo "== formatting =="
cargo fmt --check

echo "CI OK"
