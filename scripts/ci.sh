#!/usr/bin/env bash
# CI gate for the renuca workspace. Everything here must pass offline —
# the workspace is hermetic (in-tree path crates only, see README).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== release binaries (member bins are not default targets of the root package) =="
cargo build --release --workspace

echo "== tier-1: tests =="
cargo test -q

echo "== workspace tests =="
cargo test -q --workspace

echo "== differential smoke: bounded seeded corpus vs the golden model =="
# Fixed seeds, all nine placement policies, pow2 and non-pow2 meshes
# (see TESTING.md), plus the per-scheme mutation self-checks. diffcheck
# exits non-zero on any divergence and writes the ddmin-shrunk
# reproducer under out/.
./target/release/diffcheck --quick --out out

echo "== examples =="
cargo build --examples

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== manifest smoke: --stats emits a schema-conformant run manifest =="
MANIFEST="$(mktemp)"
trap 'rm -f "$MANIFEST"' EXIT
RENUCA_WARMUP=500 RENUCA_MEASURE=2000 \
    ./target/release/fig3 --stats "$MANIFEST" >/dev/null 2>&1
# Top-level keys must appear in the documented order (EXPERIMENTS.md,
# "Observability: run manifests").
if ! grep -qE '^\{"schema":"renuca-manifest-v1","binary":"fig3","label":"[^"]+","version":"[^"]+","budget":\{"warmup":500,"measure":2000\},"config":\{.*\},"stats":\{.*\},"wear_heatmap":\{"unit":"years","rows":\[.*\]\}\}$' \
    "$MANIFEST"; then
    echo "manifest smoke FAILED: $MANIFEST does not match renuca-manifest-v1"
    head -c 400 "$MANIFEST"; echo
    exit 1
fi
echo "manifest smoke OK ($(wc -c < "$MANIFEST") bytes)"

echo "== bank-queue smoke: write bursts queue, the trickle probe does not =="
# Under the asymmetric ReRAM default, the WB saturation study must observe
# bank contention (nonzero read-side queue cycles somewhere in the grid),
# while the single-core trickle probe — which never reads the L3 data
# array — must report exactly zero. Both invariants live in DESIGN.md §12.
RENUCA_WARMUP=2000 RENUCA_MEASURE=8000 \
    ./target/release/wburst --stats "$MANIFEST" >/dev/null 2>&1
if ! grep -qE '"llc\.queue_cycles_total":[1-9][0-9]*' "$MANIFEST"; then
    echo "bank-queue smoke FAILED: wburst saw no queueing under asymmetric default"
    head -c 400 "$MANIFEST"; echo
    exit 1
fi
RENUCA_WARMUP=2000 RENUCA_MEASURE=8000 \
    ./target/release/wburst --trickle --stats "$MANIFEST" >/dev/null 2>&1
if ! grep -qE '"llc\.queue_cycles_total":0[,}]' "$MANIFEST"; then
    echo "bank-queue smoke FAILED: trickle probe reported nonzero queue cycles"
    head -c 400 "$MANIFEST"; echo
    exit 1
fi
echo "bank-queue smoke OK"

echo "== forecast smoke: closed-form lifetime forecast within tolerance =="
# The L2C2 analytical forecast must describe the simulated compressed
# cache on every WL/WB workload: the forecast binary itself exits
# non-zero when any workload's iso-timing error on the lifetime
# aggregates exceeds compress::FORECAST_TOLERANCE (DESIGN.md §15). The
# committed full-budget numbers live in docs/forecast.report.json; this
# runs the same hard gate at a CI-sized budget.
RENUCA_WARMUP=5000 RENUCA_MEASURE=60000 \
    ./target/release/forecast --stats "$MANIFEST" >/dev/null
if ! grep -q '"forecast.max_rel_err"' "$MANIFEST"; then
    echo "forecast smoke FAILED: manifest carries no forecast.max_rel_err"
    head -c 400 "$MANIFEST"; echo
    exit 1
fi
echo "forecast smoke OK"

echo "== campaign smoke: run, crash, resume, verify, byte-compare =="
CAMP_TMP="$(mktemp -d)"
trap 'rm -f "$MANIFEST"; rm -rf "$CAMP_TMP"' EXIT
cat >"$CAMP_TMP/smoke.campaign" <<'EOF'
renuca-campaign-v1
name cismoke
config small 4
budget warmup=50 measure=300
schemes S-NUCA Re-NUCA
workloads 1 2
thresholds 25
EOF
# Interrupt after 2 of 4 jobs: the scheduler must stop without a report
# and exit 3 (the "campaign left resumable" code). Single-threaded so the
# stop lands deterministically between jobs.
CAMP_RC=0
./target/release/campaign run "$CAMP_TMP/smoke.campaign" \
    --out "$CAMP_TMP/a" --threads 1 --max-jobs 2 >/dev/null 2>&1 || CAMP_RC=$?
if [ "$CAMP_RC" -ne 3 ] || [ -e "$CAMP_TMP/a/report.json" ]; then
    echo "campaign smoke FAILED: interrupted run rc=$CAMP_RC (want 3, no report)"
    exit 1
fi
./target/release/campaign resume "$CAMP_TMP/smoke.campaign" \
    --out "$CAMP_TMP/a" --threads 2 >/dev/null 2>&1
./target/release/campaign verify "$CAMP_TMP/smoke.campaign" \
    --out "$CAMP_TMP/a" >/dev/null 2>&1
# An uninterrupted run of the same spec must aggregate byte-identically.
./target/release/campaign run "$CAMP_TMP/smoke.campaign" \
    --out "$CAMP_TMP/b" --threads 2 >/dev/null 2>&1
if ! cmp -s "$CAMP_TMP/a/report.json" "$CAMP_TMP/b/report.json"; then
    echo "campaign smoke FAILED: resumed report differs from uninterrupted run"
    exit 1
fi
echo "campaign smoke OK ($(wc -c < "$CAMP_TMP/a/report.json") byte report)"

echo "== head-to-head smoke: competitor campaign run, crash, resume, verify =="
# Same crash/resume/byte-compare discipline over the committed
# head-to-head spec (Re-NUCA vs WEC / Coloring / MAC with the S-NUCA
# reference, WL grid + WB write-burst family). The spec carries no budget
# line, so the environment shrinks it for CI.
H2H_RC=0
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaign run campaigns/headtohead.campaign \
    --out "$CAMP_TMP/h2h-a" --threads 1 --max-jobs 3 >/dev/null 2>&1 || H2H_RC=$?
if [ "$H2H_RC" -ne 3 ] || [ -e "$CAMP_TMP/h2h-a/report.json" ]; then
    echo "head-to-head smoke FAILED: interrupted run rc=$H2H_RC (want 3, no report)"
    exit 1
fi
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaign resume campaigns/headtohead.campaign \
    --out "$CAMP_TMP/h2h-a" --threads 2 >/dev/null 2>&1
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaign verify campaigns/headtohead.campaign \
    --out "$CAMP_TMP/h2h-a" >/dev/null 2>&1
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaign run campaigns/headtohead.campaign \
    --out "$CAMP_TMP/h2h-b" --threads 2 >/dev/null 2>&1
if ! cmp -s "$CAMP_TMP/h2h-a/report.json" "$CAMP_TMP/h2h-b/report.json"; then
    echo "head-to-head smoke FAILED: resumed report differs from uninterrupted run"
    exit 1
fi
for s in Re-NUCA Re-NUCA-C2 S-NUCA WEC Coloring MAC; do
    if ! grep -q "\"scheme\":\"$s\"" "$CAMP_TMP/h2h-a/report.json"; then
        echo "head-to-head smoke FAILED: scheme $s missing from report"
        exit 1
    fi
done
echo "head-to-head smoke OK ($(wc -c < "$CAMP_TMP/h2h-a/report.json") byte report)"

echo "== daemon smoke: campaignd serves fig3 byte-identically to the CLI =="
DAEMON_TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    rm -f "$MANIFEST"
    rm -rf "$CAMP_TMP" "$DAEMON_TMP"
    [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
}
trap cleanup EXIT
# fig3.campaign carries no budget line, so the budget comes from the
# environment — shrink it identically for the daemon and the CLI run.
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaignd --listen 127.0.0.1:0 \
    --root "$DAEMON_TMP/root" --workers 2 \
    >"$DAEMON_TMP/banner" 2>"$DAEMON_TMP/stderr" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
    grep -q "listening on" "$DAEMON_TMP/banner" 2>/dev/null && break
    sleep 0.1
done
ADDR="$(awk '/listening on/ {print $4; exit}' "$DAEMON_TMP/banner")"
if [ -z "$ADDR" ]; then
    echo "daemon smoke FAILED: campaignd printed no listen banner"
    cat "$DAEMON_TMP/stderr"
    exit 1
fi
./target/release/campaign-client submit campaigns/fig3.campaign \
    --addr "$ADDR" --tenant ci >/dev/null
./target/release/campaign-client watch fig3 \
    --addr "$ADDR" --tenant ci --timeout-s 600 >/dev/null
./target/release/campaign-client status --addr "$ADDR" --tenant ci >/dev/null
kill -9 "$DAEMON_PID" 2>/dev/null
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
RENUCA_WARMUP=50 RENUCA_MEASURE=300 \
    ./target/release/campaign run campaigns/fig3.campaign \
    --out "$DAEMON_TMP/cli" --threads 2 >/dev/null 2>&1
if ! cmp -s "$DAEMON_TMP/root/ci/fig3/report.json" "$DAEMON_TMP/cli/report.json"; then
    echo "daemon smoke FAILED: daemon report differs from CLI report"
    exit 1
fi
echo "daemon smoke OK ($(wc -c < "$DAEMON_TMP/root/ci/fig3/report.json") byte report)"

echo "== docs gate: protocol.md names every frame codec constant =="
DOCS_MISSING=0
for c in $(grep -oE 'MSG_[A-Z_]+' crates/campaign/src/serve/frame.rs | sort -u) \
         renuca-campaignd-v1; do
    if ! grep -q "$c" docs/protocol.md; then
        echo "docs gate FAILED: $c is in the codec but not in docs/protocol.md"
        DOCS_MISSING=1
    fi
done
[ "$DOCS_MISSING" -eq 0 ] || exit 1
echo "docs gate OK"

echo "== bench targets compile =="
cargo build --benches --release --workspace

echo "== bench smoke: short run emits well-formed JSON lines =="
BENCH_OUT="$(RENUCA_BENCH_SAMPLES=2 cargo bench -p bench --bench micro 2>/dev/null \
    | grep '^{"bench"')"
BENCH_N="$(printf '%s\n' "$BENCH_OUT" | wc -l)"
BENCH_BAD="$(printf '%s\n' "$BENCH_OUT" | grep -cvE \
    '^\{"bench":"[^"]+","kind":"micro","samples":[0-9]+,"iters_per_sample":[0-9]+,"min_ns":[0-9.eE+-]+,"mean_ns":[0-9.eE+-]+,"median_ns":[0-9.eE+-]+,"p95_ns":[0-9.eE+-]+\}$' \
    || true)"
if [ "$BENCH_N" -lt 10 ] || [ "$BENCH_BAD" -ne 0 ]; then
    echo "bench smoke FAILED: $BENCH_N lines, $BENCH_BAD malformed"
    printf '%s\n' "$BENCH_OUT"
    exit 1
fi
echo "bench smoke OK ($BENCH_N benches)"

echo "== perf guard: end-to-end benches vs committed baseline =="
# The end-to-end system benches — plain Re-NUCA and the compressed
# Re-NUCA-C2 variant — must stay within 25% of the committed baseline
# (BENCH_5.json, regenerated via scripts/bench_baseline.sh).
# min_ns is the stablest statistic under scheduler noise, but host-to-host
# wall-time still varies; set RENUCA_SKIP_PERF_GUARD=1 when running CI on
# a machine the baseline was not recorded on.
if [ "${RENUCA_SKIP_PERF_GUARD:-0}" = "1" ]; then
    echo "perf guard SKIPPED (RENUCA_SKIP_PERF_GUARD=1)"
elif [ ! -f BENCH_5.json ]; then
    echo "perf guard SKIPPED (no BENCH_5.json baseline)"
else
    for GUARD_BENCH in system/16core_renuca_10k_instr \
                       system/16core_renucac2_10k_instr; do
        BASE_MIN="$(grep -o "{\"bench\":\"$GUARD_BENCH\"[^}]*}" BENCH_5.json \
            | grep -o '"min_ns":[0-9.eE+-]*' | head -1 | cut -d: -f2)"
        LIVE_MIN="$(printf '%s\n' "$BENCH_OUT" \
            | grep -o "{\"bench\":\"$GUARD_BENCH\"[^}]*}" \
            | grep -o '"min_ns":[0-9.eE+-]*' | head -1 | cut -d: -f2)"
        if [ -z "$BASE_MIN" ] || [ -z "$LIVE_MIN" ]; then
            echo "perf guard FAILED: could not extract $GUARD_BENCH min_ns"
            exit 1
        fi
        if ! awk -v live="$LIVE_MIN" -v base="$BASE_MIN" \
            'BEGIN { exit !(live <= base * 1.25) }'; then
            echo "perf guard FAILED: $GUARD_BENCH min ${LIVE_MIN}ns > 1.25x baseline ${BASE_MIN}ns"
            exit 1
        fi
        echo "perf guard OK ($GUARD_BENCH min ${LIVE_MIN}ns vs baseline ${BASE_MIN}ns)"
    done
fi

echo "== bench smoke: campaign scheduler overhead =="
CAMPB_OUT="$(RENUCA_BENCH_SAMPLES=2 cargo bench -p bench --bench campaign_overhead 2>/dev/null \
    | grep '^{"bench"')"
CAMPB_N="$(printf '%s\n' "$CAMPB_OUT" | wc -l)"
CAMPB_BAD="$(printf '%s\n' "$CAMPB_OUT" | grep -cvE \
    '^\{"bench":"campaign/[^"]+","kind":"micro","samples":[0-9]+,"iters_per_sample":[0-9]+,"min_ns":[0-9.eE+-]+,"mean_ns":[0-9.eE+-]+,"median_ns":[0-9.eE+-]+,"p95_ns":[0-9.eE+-]+\}$' \
    || true)"
if [ "$CAMPB_N" -lt 4 ] || [ "$CAMPB_BAD" -ne 0 ]; then
    echo "campaign bench smoke FAILED: $CAMPB_N lines, $CAMPB_BAD malformed"
    printf '%s\n' "$CAMPB_OUT"
    exit 1
fi
echo "campaign bench smoke OK ($CAMPB_N benches)"

echo "== formatting =="
cargo fmt --check

echo "CI OK"
